//! Legacy-mode regression: with `depends_on: []` the event-driven engine
//! must reproduce the old order-free throughput model bitwise.
//!
//! `reference_run` below is a line-for-line port of the pre-DAG executor
//! (the slot-availability loop removed in the event-engine refactor): tasks
//! are dispatched in input order to the slot minimizing completion time
//! (availability plus the marginal data-locality penalty), with a single
//! per-slot warm flag. The new engine replaces the warm flag with per-node
//! warm pools, so the comparison workloads are ones where the two warm
//! semantics provably coincide: cold-free workloads (the pools are never
//! consulted) and single-model workloads where every slot's first task
//! starts before any load completes (each concurrent loader pays, exactly
//! like a cold slot).

use hpcsim::{ClusterConfig, ExecutorConfig, GroupRole, LustreModel, SlotKind, Task, WorkflowExecutor};
use std::collections::HashMap;

/// The aggregate outcome of the old throughput model — the subset of
/// `CampaignReport` the old executor produced that is directly comparable.
#[derive(Debug, PartialEq)]
struct LegacyReport {
    tasks_completed: usize,
    tasks_skipped: usize,
    makespan_seconds: f64,
    cpu_busy_seconds: f64,
    gpu_busy_seconds: f64,
    stage_in_seconds: f64,
    cold_starts: usize,
    non_local_tasks: usize,
    locality_penalty_seconds: f64,
    co_located_pairs: usize,
    split_pairs: usize,
}

/// The seed executor's scheduling loop, verbatim modulo the removed report
/// plumbing: input order, earliest-effective-slot choice, per-slot warm
/// flag.
fn reference_run(
    config: &ExecutorConfig,
    tasks: &[Task],
    cluster: &ClusterConfig,
    filesystem: &LustreModel,
) -> LegacyReport {
    struct Slot {
        kind: SlotKind,
        node: usize,
        warm: bool,
    }
    let mut slots = Vec::new();
    for node in 0..cluster.nodes {
        for _ in 0..cluster.cpu_slots_per_node {
            slots.push(Slot { kind: SlotKind::Cpu, node, warm: false });
        }
        for _ in 0..cluster.gpu_slots_per_node {
            slots.push(Slot { kind: SlotKind::Gpu, node, warm: false });
        }
    }
    let cpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Cpu).collect();
    let gpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Gpu).collect();
    let mut free_at = vec![0.0f64; slots.len()];
    let mut report = LegacyReport {
        tasks_completed: 0,
        tasks_skipped: 0,
        makespan_seconds: 0.0,
        cpu_busy_seconds: 0.0,
        gpu_busy_seconds: 0.0,
        stage_in_seconds: 0.0,
        cold_starts: 0,
        non_local_tasks: 0,
        locality_penalty_seconds: 0.0,
        co_located_pairs: 0,
        split_pairs: 0,
    };
    let mut group_nodes: HashMap<u64, usize> = HashMap::new();
    let staging_concurrency = cluster.nodes;

    for task in tasks {
        let candidates = match task.slot {
            SlotKind::Cpu => &cpu_slots,
            SlotKind::Gpu => &gpu_slots,
        };
        if candidates.is_empty() {
            report.tasks_skipped += 1;
            continue;
        }
        let base_stage_in = filesystem.stage_in_seconds(
            task.input_mb,
            task.input_files,
            staging_concurrency,
            config.node_local_staging,
        );
        let anchor = task.group.as_ref().and_then(|g| group_nodes.get(&g.id).copied());
        let data_node = anchor.or(task.preferred_node);
        let believed_node = if config.co_schedule_pairs { data_node } else { task.preferred_node };
        let off_node_penalty = match data_node {
            Some(_) => filesystem.locality_penalty_seconds(task.input_mb, staging_concurrency),
            None => 0.0,
        };
        let marginal_penalty = if config.prefetch {
            task.compute_seconds.max(base_stage_in + off_node_penalty)
                - task.compute_seconds.max(base_stage_in)
        } else {
            off_node_penalty
        };
        let is_local = |slot: &Slot| match believed_node {
            Some(node) => slot.node == node,
            None => true,
        };
        let key_for = |index: usize| {
            let local = is_local(&slots[index]);
            (free_at[index] + if local { 0.0 } else { marginal_penalty }, !local)
        };
        let mut slot_index = candidates[0];
        let mut best_key = key_for(slot_index);
        for &candidate in &candidates[1..] {
            let key = key_for(candidate);
            if key < best_key {
                best_key = key;
                slot_index = candidate;
            }
        }
        let penalty = match data_node {
            Some(node) if slots[slot_index].node != node => off_node_penalty,
            _ => 0.0,
        };
        if let Some(group) = &task.group {
            match group_nodes.get(&group.id) {
                None => {
                    group_nodes.insert(group.id, slots[slot_index].node);
                }
                Some(&node) if node == slots[slot_index].node => report.co_located_pairs += 1,
                Some(_) => report.split_pairs += 1,
            }
        }
        let slot = &mut slots[slot_index];
        if penalty > 0.0 {
            report.non_local_tasks += 1;
            report.locality_penalty_seconds += penalty;
        }
        let stage_in = base_stage_in + penalty;
        let cold = if slot.warm { 0.0 } else { task.cold_start_seconds };
        if cold > 0.0 {
            report.cold_starts += 1;
        }
        if config.warm_start && task.cold_start_seconds > 0.0 {
            slot.warm = true;
        }
        let busy = if config.prefetch {
            cold + task.compute_seconds.max(stage_in)
        } else {
            cold + stage_in + task.compute_seconds
        };
        let end = free_at[slot_index] + busy;
        report.stage_in_seconds += stage_in;
        match slot.kind {
            SlotKind::Cpu => report.cpu_busy_seconds += busy,
            SlotKind::Gpu => report.gpu_busy_seconds += busy,
        }
        report.tasks_completed += 1;
        report.makespan_seconds = report.makespan_seconds.max(end);
        free_at[slot_index] = end;
    }
    report
}

/// Run the new engine and project its report onto the legacy fields.
fn engine_run(
    config: &ExecutorConfig,
    tasks: &[Task],
    cluster: &ClusterConfig,
    filesystem: &LustreModel,
) -> LegacyReport {
    let report = WorkflowExecutor::new(*config).run(tasks, cluster, filesystem);
    LegacyReport {
        tasks_completed: report.tasks_completed,
        tasks_skipped: report.tasks_skipped,
        makespan_seconds: report.makespan_seconds,
        cpu_busy_seconds: report.cpu_busy_seconds,
        gpu_busy_seconds: report.gpu_busy_seconds,
        stage_in_seconds: report.stage_in_seconds,
        cold_starts: report.cold_starts,
        non_local_tasks: report.non_local_tasks,
        locality_penalty_seconds: report.locality_penalty_seconds,
        co_located_pairs: report.co_located_pairs,
        split_pairs: report.split_pairs,
    }
}

fn assert_bitwise_legacy(
    config: &ExecutorConfig,
    tasks: &[Task],
    cluster: &ClusterConfig,
    filesystem: &LustreModel,
) {
    assert!(tasks.iter().all(|t| t.depends_on.is_empty()), "legacy mode means no edges");
    assert!(
        tasks.windows(2).all(|w| w[0].id < w[1].id),
        "legacy comparisons need id-sorted input (the ready queue releases \
         dependency-free tasks in id order, the old model in input order)"
    );
    let legacy = reference_run(config, tasks, cluster, filesystem);
    let engine = engine_run(config, tasks, cluster, filesystem);
    assert_eq!(legacy, engine, "the event engine must replay the old throughput model bitwise");
}

#[test]
fn cold_free_affinity_workload_matches_the_old_model_bitwise() {
    // Affinity + queueing spills: exercises the marginal-penalty slot choice
    // on both sides. No cold starts, so warm semantics are irrelevant.
    let cluster = ClusterConfig { nodes: 3, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
    let fs = LustreModel { per_node_bandwidth_mb_s: 150.0, ..Default::default() };
    let tasks: Vec<Task> = (0..60)
        .map(|i| {
            Task::new(i, SlotKind::Cpu, 0.5 + (i % 5) as f64 * 0.4)
                .with_input_mb(30.0 + (i % 4) as f64 * 20.0)
                .with_preferred_node((i % 3) as usize)
        })
        .collect();
    for prefetch in [true, false] {
        let config = ExecutorConfig { prefetch, ..Default::default() };
        assert_bitwise_legacy(&config, &tasks, &cluster, &fs);
    }
}

#[test]
fn cold_free_paired_workload_matches_the_old_model_bitwise() {
    let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
    let fs = LustreModel { per_node_bandwidth_mb_s: 100.0, ..Default::default() };
    let mut tasks = Vec::new();
    for i in 0..24u64 {
        tasks.push(
            Task::new(i * 2, SlotKind::Cpu, 0.4)
                .with_input_mb(150.0)
                .with_preferred_node(i as usize % 3)
                .with_group(i, GroupRole::Extract),
        );
        tasks.push(
            Task::new(i * 2 + 1, SlotKind::Cpu, 1.8)
                .with_input_mb(150.0)
                .with_preferred_node(3)
                .with_group(i, GroupRole::Parse),
        );
    }
    for co_schedule_pairs in [true, false] {
        let config = ExecutorConfig { co_schedule_pairs, ..Default::default() };
        assert_bitwise_legacy(&config, &tasks, &cluster, &fs);
    }
}

#[test]
fn single_model_gpu_workload_matches_the_old_model_bitwise() {
    // One model kind, every GPU slot's first task starts at t = 0 before any
    // load completes: per-slot warm flags and the per-node warm pool charge
    // identical cold starts.
    let cluster = ClusterConfig::polaris(2);
    let fs = LustreModel::default();
    let tasks: Vec<Task> = (0..64)
        .map(|i| {
            Task::new(i, SlotKind::Gpu, 2.0 + (i % 3) as f64)
                .with_input_mb(5.0)
                .with_cold_start(15.0)
                .with_label("Nougat")
        })
        .collect();
    for warm_start in [true, false] {
        let config = ExecutorConfig { warm_start, ..Default::default() };
        assert_bitwise_legacy(&config, &tasks, &cluster, &fs);
    }
}

#[test]
fn staging_ablation_matches_the_old_model_bitwise() {
    let cluster = ClusterConfig::polaris(2);
    let fs = LustreModel::default();
    let tasks: Vec<Task> =
        (0..80).map(|i| Task::new(i, SlotKind::Cpu, 0.05).with_input_mb(2.0).with_input_files(40)).collect();
    for node_local_staging in [true, false] {
        let config = ExecutorConfig { node_local_staging, ..Default::default() };
        assert_bitwise_legacy(&config, &tasks, &cluster, &fs);
    }
}
