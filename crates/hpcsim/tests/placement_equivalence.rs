//! Equivalence wall for [`PlacementPolicy`]: the cost-aware policy must
//! collapse to the legacy earliest-effective-slot policy whenever its cold
//! addend cannot differ across nodes, and the legacy policy itself must
//! stay pinned bitwise no matter what code paths this PR added.
//!
//! * `CostAware` ≡ `EarliestSlot` **bitwise** (full report + full schedule)
//!   whenever every `cold_start_seconds == 0.0`, across random DAGs,
//!   kinds, affinities, and windowed submission;
//! * the same equivalence with nonzero cold starts but `warm_start: false`
//!   (every node pays the same cold, so the addend is uniform and the
//!   ranking must not even run — a uniform float addend could collapse
//!   genuine order into spurious ties);
//! * `EarliestSlot` under the default config reproduces a **pinned
//!   fingerprint** over a frozen deterministic workload, so the legacy
//!   schedule can never silently drift;
//! * ranking candidates probes warm pools side-effect-free:
//!   [`WarmPool::would_hit`] never perturbs LRU order or eviction counts.

use hpcsim::{
    CausalityMode, ClusterConfig, ExecutorConfig, LustreModel, ModelInterner, PlacementPolicy, ScheduledTask,
    SlotKind, SubmitOptions, Task, WarmAccess, WarmPool, WorkflowExecutor,
};
use proptest::prelude::*;

const MAX_TASKS: usize = 24;

/// A random windowed DAG mixing CPU and GPU tasks, node affinities, and
/// input sizes. `cold` scales every task's cold start: 0.0 produces the
/// zero-cold regime of the equivalence theorem.
fn windowed_workload(cold: f64) -> impl Strategy<Value = (Vec<Task>, usize)> {
    (
        (
            3usize..MAX_TASKS,
            prop::collection::vec(0u64..u64::MAX, MAX_TASKS..MAX_TASKS + 1),
            prop::collection::vec(1u32..40, MAX_TASKS..MAX_TASKS + 1),
        ),
        (prop::collection::vec(0u8..12, MAX_TASKS..MAX_TASKS + 1), 1usize..9),
    )
        .prop_map(move |((n, edges, durations), (shape, window))| {
            let tasks = (0..n)
                .map(|i| {
                    let deps: Vec<u64> =
                        (0..i).filter(|&j| (edges[i] >> (j % 64)) & 7 == 0).map(|j| j as u64).collect();
                    let gpu = shape[i] % 3 == 0;
                    let kind = if gpu { SlotKind::Gpu } else { SlotKind::Cpu };
                    let mut task = Task::new(i as u64, kind, durations[i] as f64 * 0.1)
                        .with_input_mb(shape[i] as f64 * 3.0)
                        .with_depends_on(deps);
                    if gpu {
                        task = task
                            .with_label(if shape[i] % 2 == 0 { "Nougat" } else { "Marker" })
                            .with_cold_start(cold);
                    }
                    if shape[i] % 4 == 0 {
                        task = task.with_preferred_node((shape[i] % 3) as usize);
                    }
                    task
                })
                .collect();
            (tasks, window)
        })
}

/// Feed `tasks` window by window at the dispatch frontier (the closed
/// loop's admission pattern) under the given placement policy.
fn run_windowed(
    config: ExecutorConfig,
    tasks: &[Task],
    window: usize,
    cluster: &ClusterConfig,
) -> (hpcsim::CampaignReport, Vec<ScheduledTask>) {
    let executor = WorkflowExecutor::new(config);
    let mut session = executor.session(cluster);
    for batch in tasks.chunks(window) {
        let floor = session.frontier_seconds();
        session.submit_with(batch, SubmitOptions { release_seconds: Some(floor) });
        session.advance_to_frontier(&LustreModel::default());
    }
    (session.report(), session.schedule().to_vec())
}

fn cluster() -> ClusterConfig {
    ClusterConfig { nodes: 3, cpu_slots_per_node: 2, gpu_slots_per_node: 2 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cost_aware_is_bitwise_earliest_slot_when_every_cold_start_is_zero(
        input in windowed_workload(0.0),
    ) {
        let (tasks, window) = input;
        let cluster = cluster();
        let earliest = run_windowed(
            ExecutorConfig { placement: PlacementPolicy::EarliestSlot, ..Default::default() },
            &tasks, window, &cluster,
        );
        let cost_aware = run_windowed(
            ExecutorConfig { placement: PlacementPolicy::CostAware, ..Default::default() },
            &tasks, window, &cluster,
        );
        prop_assert_eq!(earliest, cost_aware);
    }

    #[test]
    fn cost_aware_is_bitwise_earliest_slot_when_warm_starts_are_off(
        input in windowed_workload(11.0),
    ) {
        // With warm pools bypassed every node charges the same cold start,
        // so the cost ranking must degenerate to the legacy scan exactly —
        // including its tie-breaks.
        let (tasks, window) = input;
        let cluster = cluster();
        let earliest = run_windowed(
            ExecutorConfig {
                warm_start: false,
                placement: PlacementPolicy::EarliestSlot,
                ..Default::default()
            },
            &tasks, window, &cluster,
        );
        let cost_aware = run_windowed(
            ExecutorConfig {
                warm_start: false,
                placement: PlacementPolicy::CostAware,
                ..Default::default()
            },
            &tasks, window, &cluster,
        );
        prop_assert_eq!(earliest, cost_aware);
    }

    #[test]
    fn cost_aware_replays_bitwise(input in windowed_workload(9.0)) {
        let (tasks, window) = input;
        let cluster = cluster();
        let config = ExecutorConfig { placement: PlacementPolicy::CostAware, ..Default::default() };
        let a = run_windowed(config, &tasks, window, &cluster);
        let b = run_windowed(config, &tasks, window, &cluster);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cost_aware_ranking_never_perturbs_evictions(input in windowed_workload(9.0)) {
        // Ranking probes every candidate node's pool once per dispatched
        // task; the probes are `would_hit` (side-effect-free), so the
        // warm-pool *state trajectory* — in particular which models get
        // evicted — must be a pure function of the acquire sequence. Run
        // the same workload twice with capacity-limited pools and compare
        // the eviction accounting exactly.
        let (tasks, window) = input;
        let cluster = cluster();
        let config = ExecutorConfig {
            warm_pool_capacity: Some(1),
            placement: PlacementPolicy::CostAware,
            ..Default::default()
        };
        let (a_report, _) = run_windowed(config, &tasks, window, &cluster);
        let (b_report, _) = run_windowed(config, &tasks, window, &cluster);
        prop_assert_eq!(a_report.warm_evictions, b_report.warm_evictions);
        prop_assert_eq!(a_report.warm_models, b_report.warm_models);
    }
}

/// `would_hit` is a pure probe: no number of probes may change which model
/// the next capacity eviction removes, nor any counter. This is the
/// regression test for the side-effect-free ranking probe — with the old
/// `acquire`-based probing, the hundred probes of "Marker" below would
/// have refreshed its LRU position and flipped the eviction victim.
#[test]
fn would_hit_probes_never_perturb_lru_order() {
    let mut models = ModelInterner::new();
    let nougat = models.intern("Nougat");
    let marker = models.intern("Marker");
    let got = models.intern("GOT");
    let mut pool = WarmPool::new(Some(2));
    assert_eq!(pool.acquire(nougat, 10.0, 0.0), WarmAccess::Miss { evicted: None });
    assert_eq!(pool.acquire(marker, 10.0, 5.0), WarmAccess::Miss { evicted: None });
    // Nougat is now the LRU resident. Rank N candidates against the pool:
    // any number of probes, for any model, at any time.
    for probe in 0..100 {
        pool.would_hit(marker, 10.0, probe as f64);
        pool.would_hit(nougat, 10.0, probe as f64);
        pool.would_hit(got, 10.0, probe as f64);
    }
    assert_eq!(pool.resident_models(), 2);
    assert!(pool.would_hit(nougat, 10.0, 100.0));
    assert!(pool.would_hit(marker, 10.0, 100.0));
    assert!(!pool.would_hit(got, 10.0, 100.0));
    // The eviction victim is still Nougat — probing did not refresh it.
    assert_eq!(pool.acquire(got, 10.0, 50.0), WarmAccess::Miss { evicted: Some(nougat) });
}

/// `would_hit` agrees with what `acquire` would have returned, including
/// the still-loading (miss) and zero-cost (always hit) regimes.
#[test]
fn would_hit_matches_acquire_semantics() {
    let mut models = ModelInterner::new();
    let nougat = models.intern("Nougat");
    let pymupdf = models.intern("PyMuPDF");
    let mut pool = WarmPool::new(None);
    // Absent model: miss.
    assert!(!pool.would_hit(nougat, 15.0, 0.0));
    pool.acquire(nougat, 15.0, 0.0);
    // Still loading at t = 10 (load finishes at 15): miss.
    assert!(!pool.would_hit(nougat, 15.0, 10.0));
    // Loaded by t = 15: hit.
    assert!(pool.would_hit(nougat, 15.0, 15.0));
    // Zero-cost models are always warm, resident or not.
    assert!(pool.would_hit(pymupdf, 0.0, 0.0));
}

/// The point of the policy, pinned deterministically: with one GPU slot
/// per node and the model already warm on node 1, a free slot on cold
/// node 0 wins under `EarliestSlot` (lowest slot index on the tie) but
/// loses under `CostAware` (the warm node finishes the task sooner).
#[test]
fn cost_aware_prefers_the_warm_node_over_an_equally_free_cold_one() {
    let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 0, gpu_slots_per_node: 1 };
    let warmup =
        Task::new(0, SlotKind::Gpu, 1.0).with_label("Nougat").with_cold_start(20.0).with_preferred_node(1);
    let probe =
        Task::new(1, SlotKind::Gpu, 1.0).with_label("Nougat").with_cold_start(20.0).with_depends_on(vec![0]);
    let run = |placement| {
        WorkflowExecutor::new(ExecutorConfig { placement, ..Default::default() }).run(
            &[warmup.clone(), probe.clone()],
            &cluster,
            &LustreModel::default(),
        )
    };
    let earliest = run(PlacementPolicy::EarliestSlot);
    let cost_aware = run(PlacementPolicy::CostAware);
    // Warm-blind: task 1 lands on idle node 0 and re-loads the model.
    assert_eq!(earliest.cold_starts, 2);
    assert_eq!(earliest.warm_hits, 0);
    // Warm-aware: task 1 follows the weights to node 1 and hits.
    assert_eq!(cost_aware.cold_starts, 1);
    assert_eq!(cost_aware.warm_hits, 1);
    assert!(
        cost_aware.makespan_seconds < earliest.makespan_seconds,
        "skipping the re-load must shorten the campaign ({} vs {})",
        cost_aware.makespan_seconds,
        earliest.makespan_seconds
    );
}

/// FNV-1a over every schedule row, bit-exact. Any change to legacy
/// placement arithmetic, tie-breaks, or dispatch order changes this value.
fn schedule_fingerprint(schedule: &[ScheduledTask], makespan: f64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    let mut eat = |byte: u8| {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for row in schedule {
        for byte in row.id.to_le_bytes() {
            eat(byte);
        }
        for byte in row.label.as_bytes() {
            eat(*byte);
        }
        eat(matches!(row.kind, SlotKind::Gpu) as u8);
        for byte in (row.node as u64).to_le_bytes() {
            eat(byte);
        }
        for value in [
            row.ready_seconds,
            row.submitted_at_seconds,
            row.start_seconds,
            row.finish_seconds,
            row.cold_start_paid_seconds,
            row.herd_wait_seconds,
        ] {
            for byte in value.to_bits().to_le_bytes() {
                eat(byte);
            }
        }
    }
    for byte in makespan.to_bits().to_le_bytes() {
        eat(byte);
    }
    hash
}

/// A frozen deterministic workload (LCG-generated) exercising cold starts,
/// affinities, dependencies, and both slot kinds.
fn frozen_workload() -> Vec<Task> {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..160u64)
        .map(|i| {
            let roll = next();
            let gpu = roll % 3 == 0;
            let kind = if gpu { SlotKind::Gpu } else { SlotKind::Cpu };
            let mut task =
                Task::new(i, kind, (roll % 37 + 1) as f64 * 0.25).with_input_mb((roll % 19) as f64 * 7.0);
            if gpu {
                task = task
                    .with_label(if roll % 2 == 0 { "Nougat" } else { "Marker" })
                    .with_cold_start(12.0 + (roll % 5) as f64);
            }
            if roll % 4 == 0 {
                task = task.with_preferred_node((roll % 4) as usize);
            }
            if i >= 3 && roll % 5 == 0 {
                task = task.with_depends_on(vec![i - 3]);
            }
            task
        })
        .collect()
}

/// The legacy policy's schedule over the frozen workload, pinned bitwise.
/// `EarliestSlot` is the default: if this fingerprint moves, default
/// placement drifted and every downstream determinism contract is void.
#[test]
fn earliest_slot_matches_the_pinned_legacy_fingerprint() {
    let tasks = frozen_workload();
    let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 4, gpu_slots_per_node: 2 };
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let mut session = executor.session(&cluster);
    let report = session.submit(&tasks, &LustreModel::default());
    assert_eq!(report.tasks_completed, tasks.len());
    assert_eq!(report.herd_queue_seconds, 0.0, "no load channels are configured");
    let fingerprint = schedule_fingerprint(session.schedule(), report.makespan_seconds);
    assert_eq!(
        fingerprint, PINNED_EARLIEST_SLOT_FINGERPRINT,
        "EarliestSlot placement drifted from the pinned legacy schedule"
    );
}

/// The same pin under windowed causal admission — the closed loop's path.
#[test]
fn windowed_causal_earliest_slot_matches_the_pinned_fingerprint() {
    let tasks = frozen_workload();
    let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 4, gpu_slots_per_node: 2 };
    let config = ExecutorConfig { causality: CausalityMode::Causal, ..Default::default() };
    let (report, schedule) = run_windowed(config, &tasks, 16, &cluster);
    assert_eq!(report.tasks_completed, tasks.len());
    let fingerprint = schedule_fingerprint(&schedule, report.makespan_seconds);
    assert_eq!(
        fingerprint, PINNED_WINDOWED_CAUSAL_FINGERPRINT,
        "windowed causal EarliestSlot placement drifted from the pinned legacy schedule"
    );
}

const PINNED_EARLIEST_SLOT_FINGERPRINT: u64 = 14687656518161337660;
const PINNED_WINDOWED_CAUSAL_FINGERPRINT: u64 = 11964244014711507339;
