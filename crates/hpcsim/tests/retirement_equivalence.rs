//! Retirement equivalence: `ExecutorSession::retire_before` must be
//! invisible in every observable.
//!
//! A session that retires history behind a trailing watermark every epoch
//! and a session that never retires must produce — on the same windowed
//! workload — bitwise-identical per-epoch report snapshots, the same
//! harvested schedule-row stream (via the `schedule_since` cursor), the
//! same `tasks_in_flight_at` answers at every boundary, and the same
//! final per-GPU busy-seconds bits. The workloads exercise the state
//! retirement touches: dependency edges into the previous window
//! (completed-task map), extract/parse pairs (group anchors), GPU cold
//! starts over a small warm pool (load intervals + warm stats), shared
//! model-load channels (herd queuing), and both placement policies.
//!
//! The watermark trails two epoch boundaries behind the drain point, the
//! same discipline the serve layer uses, which satisfies the retirement
//! contract structurally: future release floors are at or above the
//! watermark, dependency targets and group partners finish after it, and
//! in-flight queries never look behind it.

use hpcsim::{
    CampaignReport, CausalityMode, ClusterConfig, ExecutorConfig, GroupRole, LustreModel, PlacementPolicy,
    ScheduledTask, SlotKind, SubmitOptions, Task, WorkflowExecutor,
};
use proptest::prelude::*;

/// Seconds between decision boundaries.
const EPOCH: f64 = 4.0;

/// Per-document spec: (extract ticks, parse ticks), then (route to the
/// expensive parser (0/1), model index, dependency selector).
type DocSpec = ((u32, u32), (u8, u8, u8));

fn workload() -> impl Strategy<Value = (Vec<Vec<DocSpec>>, (u8, usize))> {
    (
        prop::collection::vec(
            prop::collection::vec(((1u32..30, 1u32..30), (0u8..2, 0u8..3, 0u8..255)), 1..5),
            2..6,
        ),
        (0u8..2, 0usize..3),
    )
}

/// Materialize the window specs into task batches. Even ids are extract
/// (CPU), odd ids are parse (GPU, cold start, model label); a parse
/// depends on its extract and shares its group; some extracts depend on
/// an extract of the *previous* window — never further back, so every
/// dependency target finishes after the trailing watermark.
fn build_windows(specs: &[Vec<DocSpec>]) -> Vec<Vec<Task>> {
    const MODELS: [&str; 3] = ["nougat", "marker", "grobid"];
    let mut doc = 0u64;
    let mut prev_extracts: Vec<u64> = Vec::new();
    let mut windows = Vec::new();
    for window in specs {
        let mut tasks = Vec::new();
        let mut extracts = Vec::new();
        for &((dur_e, dur_p), (expensive, model, dep_sel)) in window {
            let expensive = expensive == 1;
            let extract_id = 2 * doc;
            let mut extract = Task::new(extract_id, SlotKind::Cpu, dur_e as f64 * 0.1)
                .with_input_mb(2.0)
                .with_group(doc, GroupRole::Extract);
            if dep_sel % 4 == 0 && !prev_extracts.is_empty() {
                extract = extract.with_dependency(prev_extracts[dep_sel as usize % prev_extracts.len()]);
            }
            tasks.push(extract);
            if expensive {
                tasks.push(
                    Task::new(extract_id + 1, SlotKind::Gpu, dur_p as f64 * 0.1)
                        .with_input_mb(4.0)
                        .with_cold_start(1.5)
                        .with_label(MODELS[model as usize])
                        .with_group(doc, GroupRole::Parse)
                        .with_dependency(extract_id),
                );
            }
            extracts.push(extract_id);
            doc += 1;
        }
        prev_extracts = extracts;
        windows.push(tasks);
    }
    windows
}

/// Everything an epoch-driven caller can observe from a session.
struct Observed {
    /// Post-retirement `report_snapshot()` at every boundary.
    snapshots: Vec<CampaignReport>,
    /// The full schedule-row stream, harvested through `schedule_since`.
    harvested: Vec<ScheduledTask>,
    /// `tasks_in_flight_at(boundary)` at every boundary.
    in_flight: Vec<usize>,
    /// Final snapshot after the drain.
    final_snapshot: CampaignReport,
    /// Final per-GPU `busy_seconds` bits from the *full* report's trace.
    gpu_busy_bits: Vec<u64>,
    /// Retained schedule rows at close (for the bounded-memory check).
    retained_rows: usize,
}

fn run_epochs(windows: &[Vec<Task>], cost_aware: bool, channels: usize, retire: bool) -> Observed {
    let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 1 };
    let filesystem = LustreModel { model_load_channels: channels, ..LustreModel::default() };
    let executor = WorkflowExecutor::new(ExecutorConfig {
        causality: CausalityMode::Causal,
        placement: if cost_aware { PlacementPolicy::CostAware } else { PlacementPolicy::EarliestSlot },
        warm_pool_capacity: Some(2),
        ..ExecutorConfig::default()
    });
    let mut session = executor.session(&cluster);
    let mut snapshots = Vec::new();
    let mut harvested: Vec<ScheduledTask> = Vec::new();
    let mut in_flight = Vec::new();
    let mut cursor = 0usize;
    let mut epoch = 0usize;
    while epoch < windows.len() || session.pending_task_count() > 0 {
        assert!(epoch < 10_000, "runaway epoch loop");
        let floor = epoch as f64 * EPOCH;
        if let Some(batch) = windows.get(epoch) {
            session.submit_with(batch, SubmitOptions { release_seconds: Some(floor) });
        }
        let boundary = floor + EPOCH;
        session.advance_until(boundary, &filesystem);
        harvested.extend_from_slice(session.schedule_since(cursor));
        cursor = session.schedule_len();
        in_flight.push(session.tasks_in_flight_at(boundary));
        if retire {
            session.retire_before((boundary - 2.0 * EPOCH).max(0.0));
        }
        snapshots.push(session.report_snapshot());
        epoch += 1;
    }
    let final_snapshot = session.report_snapshot();
    let full = session.report();
    let gpu_busy_bits = (0..cluster.nodes * cluster.gpu_slots_per_node)
        .map(|gpu| full.gpu_trace.busy_seconds(gpu).to_bits())
        .collect();
    let retained_rows = session.schedule().len();
    Observed { snapshots, harvested, in_flight, final_snapshot, gpu_busy_bits, retained_rows }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn retiring_every_epoch_is_observably_invisible(input in workload()) {
        let (specs, (cost_aware, channels)) = input;
        let cost_aware = cost_aware == 1;
        let windows = build_windows(&specs);
        let kept = run_epochs(&windows, cost_aware, channels, false);
        let retired = run_epochs(&windows, cost_aware, channels, true);

        prop_assert_eq!(&retired.harvested, &kept.harvested, "schedule_since streams diverged");
        prop_assert_eq!(&retired.in_flight, &kept.in_flight, "tasks_in_flight_at diverged");
        prop_assert_eq!(retired.snapshots.len(), kept.snapshots.len());
        for (epoch, (r, k)) in retired.snapshots.iter().zip(&kept.snapshots).enumerate() {
            prop_assert_eq!(r, k, "report snapshot diverged at epoch {}", epoch);
        }
        prop_assert_eq!(&retired.final_snapshot, &kept.final_snapshot);
        prop_assert_eq!(&retired.gpu_busy_bits, &kept.gpu_busy_bits, "per-GPU busy bits diverged");

        // Retirement must actually shed history whenever there was more
        // than one window's worth of it to shed.
        let total_rows = kept.harvested.len();
        prop_assert_eq!(kept.retained_rows, total_rows, "the unretired run keeps everything");
        prop_assert!(
            retired.retained_rows <= total_rows,
            "retired run retained {} of {} rows",
            retired.retained_rows,
            total_rows
        );
    }

    #[test]
    fn retirement_composes_and_lower_watermarks_are_noops(input in workload()) {
        let (specs, (cost_aware, channels)) = input;
        let cost_aware = cost_aware == 1;
        let windows = build_windows(&specs);
        let kept = run_epochs(&windows, cost_aware, channels, false);

        // Retire once at the end vs. every epoch: same observables, and a
        // second retire at the same (or a lower) watermark changes nothing.
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 1 };
        let filesystem = LustreModel { model_load_channels: channels, ..LustreModel::default() };
        let executor = WorkflowExecutor::new(ExecutorConfig {
            causality: CausalityMode::Causal,
            placement: if cost_aware { PlacementPolicy::CostAware } else { PlacementPolicy::EarliestSlot },
            warm_pool_capacity: Some(2),
            ..ExecutorConfig::default()
        });
        let mut session = executor.session(&cluster);
        for (epoch, batch) in windows.iter().enumerate() {
            session.submit_with(batch, SubmitOptions { release_seconds: Some(epoch as f64 * EPOCH) });
            session.advance_until((epoch + 1) as f64 * EPOCH, &filesystem);
        }
        session.advance_to_frontier(&filesystem);
        let watermark = windows.len() as f64 * EPOCH;
        session.retire_before(watermark);
        let once = session.report_snapshot();
        let rows_after = session.schedule().len();
        session.retire_before(watermark); // idempotent
        session.retire_before(watermark * 0.5); // lower watermark: no-op
        prop_assert_eq!(&session.report_snapshot(), &once);
        prop_assert_eq!(session.schedule().len(), rows_after);
        prop_assert_eq!(session.retire_watermark(), watermark);
        prop_assert_eq!(&once.stage_timings, &kept.final_snapshot.stage_timings);
        prop_assert_eq!(once.makespan_seconds.to_bits(), kept.final_snapshot.makespan_seconds.to_bits());
    }
}

#[test]
fn schedule_since_tracks_the_global_row_stream_across_retirement() {
    let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
    let filesystem = LustreModel::default();
    let executor = WorkflowExecutor::new(ExecutorConfig {
        causality: CausalityMode::Causal,
        ..ExecutorConfig::default()
    });
    let mut session = executor.session(&cluster);
    let mut cursor = 0usize;
    let mut seen: Vec<u64> = Vec::new();
    for epoch in 0..4u64 {
        let tasks: Vec<Task> =
            (0..3).map(|i| Task::new(epoch * 3 + i, SlotKind::Cpu, 1.0).with_input_mb(1.0)).collect();
        let floor = epoch as f64 * EPOCH;
        session.submit_with(&tasks, SubmitOptions { release_seconds: Some(floor) });
        session.advance_until(floor + EPOCH, &filesystem);
        seen.extend(session.schedule_since(cursor).iter().map(|row| row.id));
        cursor = session.schedule_len();
        session.retire_before((floor + EPOCH - 2.0 * EPOCH).max(0.0));
        // The cursor is a global-order index: retirement never rewinds it.
        assert_eq!(session.schedule_len(), session.retired_rows() + session.schedule().len());
        assert!(cursor >= session.retired_rows());
    }
    session.advance_to_frontier(&filesystem);
    seen.extend(session.schedule_since(cursor).iter().map(|row| row.id));
    let mut sorted = seen.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..12).collect::<Vec<u64>>(), "every row surfaced exactly once");
    assert!(session.retired_rows() > 0, "retirement shed early rows");
    assert!(session.retained_completed_tasks() < 12, "completed map was pruned");
}
