//! Direct preference optimization (DPO) on a linear scoring head.
//!
//! The paper post-trains its accuracy predictor on 712 human preference
//! pairs: for a document page, the text the scientist preferred should score
//! higher than the rejected one. Following the DPO formalism (Appendix A),
//! the loss per pair is
//!
//! ```text
//! L = −log σ( β·[ (s(x⁺) − s_ref(x⁺)) − (s(x⁻) − s_ref(x⁻)) ] )
//! ```
//!
//! where `s` is the trainable score, `s_ref` the frozen reference score and
//! `β` the inverse-temperature. With a linear score `s(x) = w·x + b` the
//! gradient is analytic, so the trainer below is exact rather than
//! approximate.

use serde::{Deserialize, Serialize};

use crate::matrix::{dot, sigmoid};

/// A preference pair: features of the preferred and rejected texts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferencePair {
    /// Feature vector of the preferred (chosen) text.
    pub preferred: Vec<f64>,
    /// Feature vector of the rejected text.
    pub rejected: Vec<f64>,
}

/// DPO hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpoConfig {
    /// Inverse temperature β.
    pub beta: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the preference data.
    pub epochs: usize,
    /// L2 regularization toward the reference weights.
    pub l2_to_reference: f64,
}

impl Default for DpoConfig {
    fn default() -> Self {
        DpoConfig { beta: 2.0, learning_rate: 0.1, epochs: 200, l2_to_reference: 1e-3 }
    }
}

/// Trainer maintaining the policy weights and the frozen reference weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpoTrainer {
    weights: Vec<f64>,
    bias: f64,
    reference_weights: Vec<f64>,
    reference_bias: f64,
    config: DpoConfig,
}

impl DpoTrainer {
    /// Start from reference (e.g. supervised-fine-tuned) weights; the policy
    /// is initialized at the reference.
    pub fn from_reference(weights: Vec<f64>, bias: f64, config: DpoConfig) -> Self {
        DpoTrainer { reference_weights: weights.clone(), reference_bias: bias, weights, bias, config }
    }

    /// Current policy score of a feature vector.
    pub fn score(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Frozen reference score.
    pub fn reference_score(&self, x: &[f64]) -> f64 {
        dot(&self.reference_weights, x) + self.reference_bias
    }

    /// Policy weights after training.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Policy bias after training.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Mean DPO loss over a set of pairs under the current policy.
    pub fn loss(&self, pairs: &[PreferencePair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        pairs
            .iter()
            .map(|p| {
                let margin = self.margin(p);
                -(sigmoid(margin).max(f64::MIN_POSITIVE)).ln()
            })
            .sum::<f64>()
            / pairs.len() as f64
    }

    fn margin(&self, pair: &PreferencePair) -> f64 {
        let policy = self.score(&pair.preferred) - self.score(&pair.rejected);
        let reference = self.reference_score(&pair.preferred) - self.reference_score(&pair.rejected);
        self.config.beta * (policy - reference)
    }

    /// Fraction of pairs where the policy ranks the preferred text higher.
    pub fn pairwise_accuracy(&self, pairs: &[PreferencePair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let correct = pairs.iter().filter(|p| self.score(&p.preferred) > self.score(&p.rejected)).count();
        correct as f64 / pairs.len() as f64
    }

    /// Run DPO training; returns the final mean loss.
    pub fn train(&mut self, pairs: &[PreferencePair]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let n = pairs.len() as f64;
        for _ in 0..self.config.epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = 0.0;
            for pair in pairs {
                debug_assert_eq!(pair.preferred.len(), self.weights.len());
                debug_assert_eq!(pair.rejected.len(), self.weights.len());
                let margin = self.margin(pair);
                // d/dθ [−log σ(m)] = −(1 − σ(m)) · dm/dθ
                let coeff = -(1.0 - sigmoid(margin)) * self.config.beta / n;
                for ((g, p), r) in grad_w.iter_mut().zip(&pair.preferred).zip(&pair.rejected) {
                    *g += coeff * (p - r);
                }
                // The bias cancels in the pairwise difference, so grad_b only
                // gets the regularization term below.
                grad_b += 0.0;
            }
            for i in 0..self.weights.len() {
                grad_w[i] += self.config.l2_to_reference * (self.weights[i] - self.reference_weights[i]);
                self.weights[i] -= self.config.learning_rate * grad_w[i];
            }
            self.bias -= self.config.learning_rate
                * (grad_b + self.config.l2_to_reference * (self.bias - self.reference_bias));
        }
        self.loss(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Pairs where the first feature is what humans actually care about but
    /// the reference model ignores it.
    fn synthetic_pairs(n: usize, seed: u64) -> Vec<PreferencePair> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let quality_gap = rng.gen_range(0.1..1.0);
                let base = rng.gen_range(-0.5..0.5);
                PreferencePair {
                    preferred: vec![base + quality_gap, rng.gen_range(-1.0..1.0)],
                    rejected: vec![base, rng.gen_range(-1.0..1.0)],
                }
            })
            .collect()
    }

    #[test]
    fn dpo_training_reduces_loss_and_improves_pair_accuracy() {
        let pairs = synthetic_pairs(200, 1);
        let mut trainer = DpoTrainer::from_reference(vec![0.0, 0.3], 0.0, DpoConfig::default());
        let before_loss = trainer.loss(&pairs);
        let before_acc = trainer.pairwise_accuracy(&pairs);
        let after_loss = trainer.train(&pairs);
        let after_acc = trainer.pairwise_accuracy(&pairs);
        assert!(after_loss < before_loss, "loss {before_loss} -> {after_loss}");
        assert!(after_acc > before_acc.max(0.8), "accuracy {before_acc} -> {after_acc}");
        // The learned weight on the quality feature must be positive.
        assert!(trainer.weights()[0] > 0.0);
    }

    #[test]
    fn empty_training_is_a_noop() {
        let mut trainer = DpoTrainer::from_reference(vec![0.5, -0.5], 0.1, DpoConfig::default());
        let before = trainer.clone();
        assert_eq!(trainer.train(&[]), 0.0);
        assert_eq!(trainer, before);
        assert_eq!(trainer.pairwise_accuracy(&[]), 0.0);
    }

    #[test]
    fn regularization_keeps_policy_near_reference() {
        let pairs = synthetic_pairs(100, 2);
        let tight = DpoConfig { l2_to_reference: 10.0, ..DpoConfig::default() };
        let loose = DpoConfig { l2_to_reference: 0.0, ..DpoConfig::default() };
        let reference = vec![0.0, 0.0];
        let mut tight_trainer = DpoTrainer::from_reference(reference.clone(), 0.0, tight);
        let mut loose_trainer = DpoTrainer::from_reference(reference.clone(), 0.0, loose);
        tight_trainer.train(&pairs);
        loose_trainer.train(&pairs);
        let drift =
            |t: &DpoTrainer| t.weights().iter().zip(&reference).map(|(w, r)| (w - r).abs()).sum::<f64>();
        assert!(drift(&tight_trainer) < drift(&loose_trainer));
    }

    #[test]
    fn reference_score_is_frozen() {
        let pairs = synthetic_pairs(50, 3);
        let mut trainer = DpoTrainer::from_reference(vec![0.2, 0.2], 0.0, DpoConfig::default());
        let x = [0.5, 0.5];
        let ref_before = trainer.reference_score(&x);
        trainer.train(&pairs);
        assert_eq!(trainer.reference_score(&x), ref_before);
        assert_ne!(trainer.score(&x), ref_before);
    }
}
