//! Frozen "pretrained" text encoders of graded quality.
//!
//! Table 4 of the paper compares prediction models built on different
//! pretrained encoders: SciBERT and SPECTER (scientific pretraining) beat
//! BERT and MiniLM (web pretraining). We reproduce the *ordering* rather
//! than the checkpoints: every profile is a hashed-n-gram featurizer followed
//! by a frozen random projection, and the profiles differ in embedding
//! width, feature richness and the amount of noise injected — lower-quality
//! encoders see a noisier, narrower view of the text.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::features::{aggregate_statistics, HashedNgramFeaturizer};
use crate::matrix::{l2_normalize, Matrix};

/// Which pretrained encoder a [`PretrainedEncoder`] emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderProfile {
    /// SciBERT: scientific-text pretraining, the paper's CLS III choice.
    SciBert,
    /// SPECTER: citation-informed scientific document encoder.
    Specter,
    /// BERT: general web/books pretraining.
    Bert,
    /// MiniLM-L6: small distilled general-purpose encoder.
    MiniLm,
    /// fastText-style averaged word embeddings (AdaParse FT variant).
    FastText,
}

impl EncoderProfile {
    /// All profiles evaluated in Table 4 (plus fastText).
    pub const ALL: [EncoderProfile; 5] = [
        EncoderProfile::SciBert,
        EncoderProfile::Specter,
        EncoderProfile::Bert,
        EncoderProfile::MiniLm,
        EncoderProfile::FastText,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            EncoderProfile::SciBert => "SciBERT",
            EncoderProfile::Specter => "SPECTER",
            EncoderProfile::Bert => "BERT",
            EncoderProfile::MiniLm => "MiniLM-L6",
            EncoderProfile::FastText => "fastText",
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        match self {
            EncoderProfile::SciBert | EncoderProfile::Bert => 192,
            EncoderProfile::Specter => 160,
            EncoderProfile::MiniLm => 96,
            EncoderProfile::FastText => 64,
        }
    }

    /// Width of the hashed-n-gram view the encoder gets to see. Scientific
    /// pretraining is modelled as a richer (wider, char-aware) view.
    fn feature_dim(&self) -> usize {
        match self {
            EncoderProfile::SciBert => 2048,
            EncoderProfile::Specter => 1536,
            EncoderProfile::Bert => 1024,
            EncoderProfile::MiniLm => 512,
            EncoderProfile::FastText => 512,
        }
    }

    /// Standard deviation of the representation noise injected per encode,
    /// modelling the domain mismatch of web-pretrained encoders.
    fn representation_noise(&self) -> f64 {
        match self {
            EncoderProfile::SciBert => 0.00,
            EncoderProfile::Specter => 0.01,
            EncoderProfile::Bert => 0.04,
            EncoderProfile::MiniLm => 0.07,
            EncoderProfile::FastText => 0.05,
        }
    }

    fn uses_char_trigrams(&self) -> bool {
        !matches!(self, EncoderProfile::FastText | EncoderProfile::MiniLm)
    }
}

impl std::fmt::Display for EncoderProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A frozen encoder: hashed n-grams → fixed random projection → embedding.
#[derive(Debug, Clone)]
pub struct PretrainedEncoder {
    profile: EncoderProfile,
    featurizer: HashedNgramFeaturizer,
    projection: Matrix,
    noise_seed: u64,
}

impl PretrainedEncoder {
    /// Instantiate an encoder for the given profile. The projection is a pure
    /// function of the profile, playing the role of frozen pretrained weights.
    pub fn new(profile: EncoderProfile) -> Self {
        let feature_dim = profile.feature_dim();
        let featurizer = if profile.uses_char_trigrams() {
            HashedNgramFeaturizer::new(feature_dim)
        } else {
            HashedNgramFeaturizer::words_only(feature_dim)
        };
        let mut rng =
            StdRng::seed_from_u64(0xC0FFEE ^ profile.embedding_dim() as u64 ^ (feature_dim as u64) << 16);
        // +8 columns for the aggregate-statistics side features.
        let projection = Matrix::random(
            profile.embedding_dim(),
            feature_dim + 8,
            (2.0 / feature_dim as f64).sqrt(),
            &mut rng,
        );
        PretrainedEncoder { profile, featurizer, projection, noise_seed: 0x5EED }
    }

    /// The profile this encoder emulates.
    pub fn profile(&self) -> EncoderProfile {
        self.profile
    }

    /// Output embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.profile.embedding_dim()
    }

    /// Encode a text into a fixed-width embedding.
    ///
    /// Deterministic: the representation noise for low-quality profiles is
    /// seeded from a hash of the input so repeated calls agree.
    pub fn encode(&self, text: &str) -> Vec<f64> {
        let mut features = self.featurizer.features(text);
        features.extend_from_slice(&aggregate_statistics(text));
        let mut embedding = self.projection.matvec(&features);
        let noise = self.profile.representation_noise();
        if noise > 0.0 {
            let mut rng = StdRng::seed_from_u64(self.noise_seed ^ fnv(text));
            for v in &mut embedding {
                *v += rng.gen_range(-noise..=noise);
            }
        }
        l2_normalize(&mut embedding);
        embedding
    }

    /// Encode a batch of texts.
    pub fn encode_batch<S: AsRef<str>>(&self, texts: &[S]) -> Vec<Vec<f64>> {
        texts.iter().map(|t| self.encode(t.as_ref())).collect()
    }
}

fn fnv(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_is_deterministic_and_normalized() {
        let encoder = PretrainedEncoder::new(EncoderProfile::SciBert);
        let a = encoder.encode("the enzyme kinetics follow michaelis menten behaviour");
        let b = encoder.encode("the enzyme kinetics follow michaelis menten behaviour");
        assert_eq!(a, b);
        assert_eq!(a.len(), EncoderProfile::SciBert.embedding_dim());
        let norm: f64 = a.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_texts_produce_different_embeddings() {
        let encoder = PretrainedEncoder::new(EncoderProfile::Bert);
        let a = encoder.encode("deep learning for protein folding");
        let b = encoder.encode("macroeconomic effects of fiscal policy");
        let cos: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!(cos < 0.95);
    }

    #[test]
    fn profiles_have_expected_dims_and_names() {
        for profile in EncoderProfile::ALL {
            let encoder = PretrainedEncoder::new(profile);
            assert_eq!(encoder.encode("text sample").len(), profile.embedding_dim());
            assert!(!profile.name().is_empty());
            assert_eq!(encoder.profile(), profile);
        }
        assert!(EncoderProfile::SciBert.embedding_dim() > EncoderProfile::MiniLm.embedding_dim());
    }

    #[test]
    fn batch_encoding_matches_single() {
        let encoder = PretrainedEncoder::new(EncoderProfile::MiniLm);
        let texts = ["alpha beta", "gamma delta"];
        let batch = encoder.encode_batch(&texts);
        assert_eq!(batch[0], encoder.encode("alpha beta"));
        assert_eq!(batch[1], encoder.encode("gamma delta"));
    }

    #[test]
    fn scibert_is_less_noisy_than_minilm() {
        // Two texts differing by scrambling should stay closer under the
        // noisier, narrower encoder view than under SciBERT's richer view?
        // The important property for Table 4 is simply that the *noise*
        // parameter ordering holds.
        assert!(
            EncoderProfile::SciBert.representation_noise() < EncoderProfile::MiniLm.representation_noise()
        );
        assert!(EncoderProfile::Specter.representation_noise() < EncoderProfile::Bert.representation_noise());
    }
}
