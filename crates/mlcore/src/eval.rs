//! Evaluation metrics for the prediction models.

/// Mean squared error. Returns `0.0` for empty or mismatched input.
pub fn mse(predicted: &[f64], observed: &[f64]) -> f64 {
    if predicted.len() != observed.len() || predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(observed).map(|(p, o)| (p - o) * (p - o)).sum::<f64>() / predicted.len() as f64
}

/// Mean absolute error. Returns `0.0` for empty or mismatched input.
pub fn mae(predicted: &[f64], observed: &[f64]) -> f64 {
    if predicted.len() != observed.len() || predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(observed).map(|(p, o)| (p - o).abs()).sum::<f64>() / predicted.len() as f64
}

/// Coefficient of determination R² (can be negative).
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> f64 {
    if predicted.len() != observed.len() || observed.len() < 2 {
        return 0.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - mean) * (y - mean)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predicted.iter().zip(observed).map(|(p, y)| (y - p) * (y - p)).sum();
    1.0 - ss_res / ss_tot
}

/// Classification accuracy. Returns `0.0` for empty or mismatched input.
pub fn accuracy(predicted: &[usize], observed: &[usize]) -> f64 {
    if predicted.len() != observed.len() || predicted.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(observed).filter(|(p, o)| p == o).count() as f64 / predicted.len() as f64
}

/// Index of the maximum element (first one on ties); `None` for empty input.
pub fn argmax(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_metrics() {
        let obs = [1.0, 2.0, 3.0];
        assert_eq!(mse(&obs, &obs), 0.0);
        assert_eq!(mae(&obs, &obs), 0.0);
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        let pred = [2.0, 3.0, 4.0];
        assert!((mse(&pred, &obs) - 1.0).abs() < 1e-12);
        assert!((mae(&pred, &obs) - 1.0).abs() < 1e-12);
        assert_eq!(mse(&[1.0], &[]), 0.0);
    }

    #[test]
    fn classification_metrics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 1.0]), Some(0));
    }
}
