//! Hashed n-gram featurization (fastText-flavoured).
//!
//! The AdaParse (FT) variant uses fastText word embeddings; the LLM variant
//! feeds first-page text into a transformer. Both are approximated here by
//! hashed bag-of-n-gram features: word unigrams/bigrams plus character
//! trigrams, hashed into a fixed-dimensional L2-normalized vector. Hashed
//! n-grams preserve exactly the signal the selector needs — the presence of
//! malformed substrings, LaTeX residue, scrambled words — without any
//! pretrained weights.

use serde::{Deserialize, Serialize};

use crate::matrix::l2_normalize;

/// Featurizer turning text into a fixed-dimensional hashed n-gram vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashedNgramFeaturizer {
    dim: usize,
    use_word_bigrams: bool,
    use_char_trigrams: bool,
}

impl HashedNgramFeaturizer {
    /// Featurizer with word unigrams/bigrams and character trigrams.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        HashedNgramFeaturizer { dim, use_word_bigrams: true, use_char_trigrams: true }
    }

    /// Word-only featurizer (used by the fastText-style variant).
    pub fn words_only(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        HashedNgramFeaturizer { dim, use_word_bigrams: true, use_char_trigrams: false }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Featurize a text into an L2-normalized vector of length [`Self::dim`].
    pub fn features(&self, text: &str) -> Vec<f64> {
        let mut v = vec![0.0f64; self.dim];
        let lower = text.to_lowercase();
        let words: Vec<&str> = lower.split_whitespace().collect();
        for word in &words {
            self.bump(&mut v, &["w:", word]);
        }
        if self.use_word_bigrams {
            for pair in words.windows(2) {
                self.bump(&mut v, &["b:", pair[0], "_", pair[1]]);
            }
        }
        if self.use_char_trigrams {
            let chars: Vec<char> = lower.chars().collect();
            for window in chars.windows(3) {
                let tri: String = window.iter().collect();
                self.bump(&mut v, &["c:", &tri]);
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Featurize and append extra dense features (e.g. aggregate statistics),
    /// normalizing the combined vector.
    pub fn features_with_extra(&self, text: &str, extra: &[f64]) -> Vec<f64> {
        let mut v = self.features(text);
        v.extend_from_slice(extra);
        l2_normalize(&mut v);
        v
    }

    fn bump(&self, v: &mut [f64], parts: &[&str]) {
        let mut h = FNV_OFFSET;
        for part in parts {
            for b in part.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        v[(h % self.dim as u64) as usize] += 1.0;
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Aggregate text statistics used as dense side-features by CLS I and the
/// metadata baselines: length, alphanumeric ratio, word-likeness, mean word
/// length, digit ratio, uppercase ratio, backslash density, whitespace runs.
pub fn aggregate_statistics(text: &str) -> Vec<f64> {
    let char_count = text.chars().count() as f64;
    let word_count = text.split_whitespace().count() as f64;
    let alnum = text.chars().filter(|c| c.is_alphanumeric()).count() as f64;
    let digits = text.chars().filter(|c| c.is_ascii_digit()).count() as f64;
    let upper = text.chars().filter(|c| c.is_uppercase()).count() as f64;
    let backslashes = text.chars().filter(|&c| c == '\\' || c == '$' || c == '{').count() as f64;
    let double_spaces = text.matches("  ").count() as f64;
    let mean_word_len = if word_count > 0.0 { alnum / word_count } else { 0.0 };
    let nonspace = text.chars().filter(|c| !c.is_whitespace()).count().max(1) as f64;
    vec![
        (char_count / 5_000.0).min(2.0),
        (word_count / 1_000.0).min(2.0),
        alnum / nonspace,
        digits / nonspace,
        upper / nonspace,
        backslashes / nonspace,
        (double_spaces / (word_count + 1.0)).min(1.0),
        (mean_word_len / 10.0).min(2.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_normalized_and_deterministic() {
        let f = HashedNgramFeaturizer::new(128);
        let a = f.features("the enzyme catalyzes the reaction");
        let b = f.features("the enzyme catalyzes the reaction");
        assert_eq!(a, b);
        let norm: f64 = a.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(a.len(), 128);
    }

    #[test]
    fn different_texts_give_different_features() {
        let f = HashedNgramFeaturizer::new(256);
        let a = f.features("quantum entanglement in superconducting qubits");
        let b = f.features("randomized clinical trial of a new antibody");
        let cos: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        assert!(cos < 0.9, "distinct topics should not be near-identical (cos = {cos})");
    }

    #[test]
    fn empty_text_is_the_zero_vector() {
        let f = HashedNgramFeaturizer::new(32);
        let v = f.features("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        HashedNgramFeaturizer::new(0);
    }

    #[test]
    fn words_only_ignores_character_structure_less() {
        // Character trigrams make the full featurizer more sensitive to
        // in-word scrambling than the words-only variant.
        let full = HashedNgramFeaturizer::new(512);
        let words = HashedNgramFeaturizer::words_only(512);
        let clean = "gravitational interactions between macromolecules in solution";
        let scrambled = "grvaitational interacitons bewteen macromolecuels in soluiton";
        let cos = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        let full_sim = cos(&full.features(clean), &full.features(scrambled));
        let word_sim = cos(&words.features(clean), &words.features(scrambled));
        assert!(full_sim > word_sim, "char trigrams retain partial overlap: {full_sim} vs {word_sim}");
    }

    #[test]
    fn aggregate_statistics_have_expected_shape_and_signal() {
        let clean = aggregate_statistics("This is ordinary prose with reasonable words.");
        let latexy = aggregate_statistics("\\frac{a}{b} $$ \\sum_{i} x_i $$ {braces}");
        assert_eq!(clean.len(), 8);
        assert_eq!(latexy.len(), 8);
        assert!(latexy[5] > clean[5], "backslash density must be higher for latex residue");
        let empty = aggregate_statistics("");
        assert_eq!(empty.len(), 8);
        assert!(empty.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn features_with_extra_appends_and_normalizes() {
        let f = HashedNgramFeaturizer::new(16);
        let v = f.features_with_extra("some text", &[0.5, 0.25]);
        assert_eq!(v.len(), 18);
        let norm: f64 = v.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }
}
