// The gradient kernels index several parallel buffers with one loop counter
// (`grad_w[i] += g * x[i]`); clippy's iterator rewrite obscures that shape.
#![allow(clippy::needless_range_loop)]

//! Minimal machine-learning substrate for the AdaParse reproduction.
//!
//! The paper fine-tunes pretrained language models (SciBERT, BERT, MiniLM,
//! SPECTER) to regress per-parser BLEU from first-page text, applies LoRA
//! for parameter-efficient adaptation, and post-trains with DPO on human
//! preference pairs. Shipping those checkpoints is impossible here, so this
//! crate provides the stand-ins with the same *shape*:
//!
//! * [`matrix`] — a small dense-matrix type with the operations the models
//!   need (no external linear-algebra crates),
//! * [`features`] — hashed character/word n-gram featurization (fastText-like),
//! * [`encoder`] — frozen "pretrained" encoders of graded quality simulating
//!   the SciBERT > BERT > MiniLM ordering,
//! * [`linear`] / [`mlp`] — trainable heads (multi-output ridge/SGD linear
//!   regression, logistic regression, linear SVC, one-hidden-layer MLP),
//! * [`optim`] — SGD and Adam,
//! * [`lora`] — low-rank adaptation of a frozen projection,
//! * [`dpo`] — direct preference optimization on a scalar scoring head,
//! * [`eval`] — regression/classification metrics.
//!
//! # Example
//!
//! ```
//! use mlcore::features::HashedNgramFeaturizer;
//! use mlcore::linear::LinearRegression;
//!
//! let featurizer = HashedNgramFeaturizer::new(64);
//! let xs: Vec<Vec<f64>> = ["alpha beta", "gamma delta"].iter().map(|t| featurizer.features(t)).collect();
//! let ys = vec![vec![1.0], vec![0.0]];
//! let mut model = LinearRegression::new(64, 1);
//! model.fit(&xs, &ys, 200, 0.5, 1e-4);
//! assert!(model.predict(&xs[0])[0] > model.predict(&xs[1])[0]);
//! ```

pub mod dpo;
pub mod encoder;
pub mod eval;
pub mod features;
pub mod linear;
pub mod lora;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use dpo::{DpoConfig, DpoTrainer, PreferencePair};
pub use encoder::{EncoderProfile, PretrainedEncoder};
pub use features::HashedNgramFeaturizer;
pub use linear::{LinearRegression, LinearSvc, LogisticRegression};
pub use matrix::Matrix;
pub use mlp::MlpRegressor;
pub use optim::{Adam, Optimizer, Sgd};
