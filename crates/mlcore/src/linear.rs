//! Linear models: multi-output regression, logistic regression, linear SVC.

use serde::{Deserialize, Serialize};

use crate::matrix::{dot, sigmoid};
use crate::optim::{Optimizer, Sgd};

/// Multi-output linear regression trained with mini-batch SGD and L2
/// regularization. This is the trainable "head" placed on top of a frozen
/// encoder: in the paper's terms, the supervised fine-tuning stage that
/// predicts per-parser BLEU from text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Weight matrix flattened row-major: `outputs × inputs`.
    weights: Vec<f64>,
    bias: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl LinearRegression {
    /// Zero-initialized model.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "dimensions must be positive");
        LinearRegression { weights: vec![0.0; inputs * outputs], bias: vec![0.0; outputs], inputs, outputs }
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Predict the output vector for one input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.inputs()`.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.inputs, "input dimension mismatch");
        (0..self.outputs)
            .map(|o| dot(&self.weights[o * self.inputs..(o + 1) * self.inputs], x) + self.bias[o])
            .collect()
    }

    /// Fit with full-batch gradient descent for `epochs` epochs.
    ///
    /// # Panics
    ///
    /// Panics if the sample and target counts differ or dimensions mismatch.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], epochs: usize, learning_rate: f64, l2: f64) {
        assert_eq!(xs.len(), ys.len(), "sample/target count mismatch");
        if xs.is_empty() {
            return;
        }
        let n = xs.len() as f64;
        let mut optimizer = Sgd::new(learning_rate);
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = vec![0.0; self.bias.len()];
            for (x, y) in xs.iter().zip(ys.iter()) {
                assert_eq!(y.len(), self.outputs, "target dimension mismatch");
                let pred = self.predict(x);
                for o in 0..self.outputs {
                    let err = pred[o] - y[o];
                    grad_b[o] += 2.0 * err / n;
                    let row = &mut grad_w[o * self.inputs..(o + 1) * self.inputs];
                    for (g, xi) in row.iter_mut().zip(x.iter()) {
                        *g += 2.0 * err * xi / n;
                    }
                }
            }
            for (g, w) in grad_w.iter_mut().zip(self.weights.iter()) {
                *g += l2 * w;
            }
            optimizer.step(&mut self.weights, &grad_w);
            optimizer.step(&mut self.bias, &grad_b);
        }
    }

    /// Immutable view of the flattened weights (used by LoRA and DPO).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable view of the flattened weights.
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// Immutable view of the biases.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }
}

/// Binary logistic regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Zero-initialized model for `inputs` features.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero.
    pub fn new(inputs: usize) -> Self {
        assert!(inputs > 0, "dimensions must be positive");
        LogisticRegression { weights: vec![0.0; inputs], bias: 0.0 }
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// Hard classification at the 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Fit with gradient descent on the logistic loss.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[bool], epochs: usize, learning_rate: f64, l2: f64) {
        assert_eq!(xs.len(), ys.len(), "sample/target count mismatch");
        if xs.is_empty() {
            return;
        }
        let n = xs.len() as f64;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = 0.0;
            for (x, &y) in xs.iter().zip(ys.iter()) {
                let p = self.predict_proba(x);
                let err = p - if y { 1.0 } else { 0.0 };
                grad_b += err / n;
                for (g, xi) in grad_w.iter_mut().zip(x.iter()) {
                    *g += err * xi / n;
                }
            }
            for i in 0..self.weights.len() {
                self.weights[i] -= learning_rate * (grad_w[i] + l2 * self.weights[i]);
            }
            self.bias -= learning_rate * grad_b;
        }
    }
}

/// Multi-class linear support vector classifier (one-vs-rest, hinge loss).
/// This is the paper's CLS I / CLS II metadata baseline ("SVC").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvc {
    weights: Vec<f64>,
    bias: Vec<f64>,
    inputs: usize,
    classes: usize,
}

impl LinearSvc {
    /// Zero-initialized one-vs-rest SVC.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, classes: usize) -> Self {
        assert!(inputs > 0 && classes > 0, "dimensions must be positive");
        LinearSvc { weights: vec![0.0; inputs * classes], bias: vec![0.0; classes], inputs, classes }
    }

    /// Per-class decision scores.
    pub fn decision_function(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.inputs, "input dimension mismatch");
        (0..self.classes)
            .map(|c| dot(&self.weights[c * self.inputs..(c + 1) * self.inputs], x) + self.bias[c])
            .collect()
    }

    /// Predicted class index.
    pub fn predict(&self, x: &[f64]) -> usize {
        let scores = self.decision_function(x);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Fit with sub-gradient descent on the one-vs-rest hinge loss.
    pub fn fit(&mut self, xs: &[Vec<f64>], labels: &[usize], epochs: usize, learning_rate: f64, l2: f64) {
        assert_eq!(xs.len(), labels.len(), "sample/label count mismatch");
        if xs.is_empty() {
            return;
        }
        let n = xs.len() as f64;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; self.weights.len()];
            let mut grad_b = vec![0.0; self.bias.len()];
            for (x, &label) in xs.iter().zip(labels.iter()) {
                let scores = self.decision_function(x);
                for c in 0..self.classes {
                    let target = if c == label { 1.0 } else { -1.0 };
                    let margin = target * scores[c];
                    if margin < 1.0 {
                        grad_b[c] += -target / n;
                        let row = &mut grad_w[c * self.inputs..(c + 1) * self.inputs];
                        for (g, xi) in row.iter_mut().zip(x.iter()) {
                            *g += -target * xi / n;
                        }
                    }
                }
            }
            for c in 0..self.classes {
                for i in 0..self.inputs {
                    let idx = c * self.inputs + i;
                    self.weights[idx] -= learning_rate * (grad_w[idx] + l2 * self.weights[idx]);
                }
                self.bias[c] -= learning_rate * grad_b[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_regression_recovers_a_linear_map() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<Vec<f64>> =
            (0..200).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0] - x[1] + 0.5]).collect();
        let mut model = LinearRegression::new(2, 1);
        model.fit(&xs, &ys, 800, 0.3, 0.0);
        let pred = model.predict(&[0.5, -0.5]);
        assert!((pred[0] - 2.0).abs() < 0.1, "pred = {}", pred[0]);
    }

    #[test]
    fn multi_output_regression_learns_independent_targets() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0], 1.0 - x[0]]).collect();
        let mut model = LinearRegression::new(1, 2);
        model.fit(&xs, &ys, 2000, 0.5, 0.0);
        let p = model.predict(&[0.25]);
        assert!((p[0] - 0.25).abs() < 0.05);
        assert!((p[1] - 0.75).abs() < 0.05);
    }

    #[test]
    fn empty_fit_is_a_noop() {
        let mut model = LinearRegression::new(3, 1);
        let before = model.clone();
        model.fit(&[], &[], 10, 0.1, 0.0);
        assert_eq!(model, before);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        LinearRegression::new(0, 1);
    }

    #[test]
    fn logistic_regression_separates_separable_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..100 {
            let positive = rng.gen_bool(0.5);
            let center = if positive { 1.0 } else { -1.0 };
            xs.push(vec![center + rng.gen_range(-0.4..0.4), rng.gen_range(-1.0..1.0)]);
            ys.push(positive);
        }
        let mut model = LogisticRegression::new(2);
        model.fit(&xs, &ys, 500, 0.5, 1e-4);
        let correct = xs.iter().zip(&ys).filter(|(x, &y)| model.predict(x) == y).count();
        assert!(correct as f64 / xs.len() as f64 > 0.9);
        assert!(model.predict_proba(&[2.0, 0.0]) > 0.8);
        assert!(model.predict_proba(&[-2.0, 0.0]) < 0.2);
    }

    #[test]
    fn svc_learns_a_three_class_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0f64, 2.0f64), (2.0, -1.0), (-2.0, -1.0)];
        for _ in 0..240 {
            let class = rng.gen_range(0..3usize);
            let (cx, cy) = centers[class];
            xs.push(vec![cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)]);
            labels.push(class);
        }
        let mut model = LinearSvc::new(2, 3);
        model.fit(&xs, &labels, 400, 0.2, 1e-4);
        let correct = xs.iter().zip(&labels).filter(|(x, &l)| model.predict(x) == l).count();
        assert!(correct as f64 / xs.len() as f64 > 0.9, "accuracy too low");
        assert_eq!(model.decision_function(&[0.0, 2.0]).len(), 3);
    }
}
