//! Low-rank adaptation (LoRA) of a frozen projection.
//!
//! The paper fine-tunes its accuracy predictor with parameter-efficient
//! low-rank adaptation (Hu et al., 2021): the frozen pretrained weight matrix
//! `W` is augmented with a trainable low-rank update `ΔW = (α/r)·A·B`. Here
//! the frozen matrix is the encoder projection, the adapters are trained by
//! SGD on a regression loss, and the adapted encoder is what the CLS III
//! predictor builds on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A rank-`r` adapter for a frozen `out × in` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraAdapter {
    /// `out × r`, initialized to small random values.
    a: Matrix,
    /// `r × in`, initialized to zero so the adapter starts as a no-op.
    b: Matrix,
    rank: usize,
    alpha: f64,
}

impl LoraAdapter {
    /// Create an adapter for a frozen matrix of shape `out_dim × in_dim`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the rank is zero.
    pub fn new(out_dim: usize, in_dim: usize, rank: usize, alpha: f64, seed: u64) -> Self {
        assert!(out_dim > 0 && in_dim > 0 && rank > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        LoraAdapter {
            a: Matrix::random(out_dim, rank, 0.05, &mut rng),
            b: Matrix::zeros(rank, in_dim),
            rank,
            alpha,
        }
    }

    /// Adapter rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of trainable parameters.
    pub fn trainable_parameters(&self) -> usize {
        self.a.rows() * self.a.cols() + self.b.rows() * self.b.cols()
    }

    /// The low-rank update `ΔW = (α/r)·A·B`.
    pub fn delta(&self) -> Matrix {
        self.a.matmul(&self.b).scale(self.alpha / self.rank as f64)
    }

    /// Apply the adapter to the frozen matrix, producing the effective weights.
    ///
    /// # Panics
    ///
    /// Panics if `frozen`'s shape disagrees with the adapter.
    pub fn apply(&self, frozen: &Matrix) -> Matrix {
        frozen.add(&self.delta())
    }

    /// Adapted matrix–vector product `(W + ΔW)·x` without materializing ΔW.
    pub fn matvec(&self, frozen: &Matrix, x: &[f64]) -> Vec<f64> {
        let mut out = frozen.matvec(x);
        let bx = self.b.matvec(x);
        let scale = self.alpha / self.rank as f64;
        for (o, row) in out.iter_mut().zip(0..self.a.rows()) {
            let mut acc = 0.0;
            for (k, bxk) in bx.iter().enumerate() {
                acc += self.a.get(row, k) * bxk;
            }
            *o += scale * acc;
        }
        out
    }

    /// One SGD step on the squared error of `(W + ΔW)·x` against `target`.
    ///
    /// Returns the loss before the update.
    pub fn sgd_step(&mut self, frozen: &Matrix, x: &[f64], target: &[f64], learning_rate: f64) -> f64 {
        let pred = self.matvec(frozen, x);
        assert_eq!(pred.len(), target.len(), "target dimension mismatch");
        let residual: Vec<f64> = pred.iter().zip(target).map(|(p, t)| p - t).collect();
        let loss: f64 = residual.iter().map(|r| r * r).sum::<f64>() / residual.len() as f64;
        let scale = self.alpha / self.rank as f64;
        let bx = self.b.matvec(x);
        // Gradients: dL/dA = scale · residual ⊗ (B·x); dL/dB = scale · (Aᵀ·residual) ⊗ x.
        let norm = 2.0 / residual.len() as f64;
        let mut at_res = vec![0.0; self.rank];
        for r in 0..self.a.rows() {
            for k in 0..self.rank {
                at_res[k] += self.a.get(r, k) * residual[r];
            }
        }
        for r in 0..self.a.rows() {
            for k in 0..self.rank {
                let grad = norm * scale * residual[r] * bx[k];
                self.a.set(r, k, self.a.get(r, k) - learning_rate * grad);
            }
        }
        for k in 0..self.rank {
            for i in 0..self.b.cols() {
                let grad = norm * scale * at_res[k] * x[i];
                self.b.set(k, i, self.b.get(k, i) - learning_rate * grad);
            }
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_adapter_is_a_noop() {
        let frozen = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let adapter = LoraAdapter::new(2, 2, 1, 1.0, 3);
        let x = [0.3, -0.7];
        assert_eq!(adapter.matvec(&frozen, &x), frozen.matvec(&x));
        assert_eq!(adapter.apply(&frozen), frozen);
    }

    #[test]
    fn adapter_has_far_fewer_parameters_than_full_matrix() {
        let adapter = LoraAdapter::new(128, 512, 4, 8.0, 1);
        assert!(adapter.trainable_parameters() < 128 * 512 / 10);
        assert_eq!(adapter.rank(), 4);
    }

    #[test]
    fn sgd_steps_reduce_the_regression_loss() {
        let frozen = Matrix::zeros(2, 3);
        let mut adapter = LoraAdapter::new(2, 3, 2, 2.0, 9);
        let x = [1.0, -0.5, 0.25];
        let target = [0.8, -0.3];
        let initial = adapter.sgd_step(&frozen, &x, &target, 0.2);
        let mut last = initial;
        for _ in 0..200 {
            last = adapter.sgd_step(&frozen, &x, &target, 0.2);
        }
        assert!(last < initial * 0.1, "loss did not drop: {initial} -> {last}");
        let pred = adapter.matvec(&frozen, &x);
        assert!((pred[0] - 0.8).abs() < 0.1);
        assert!((pred[1] + 0.3).abs() < 0.1);
    }

    #[test]
    fn delta_shape_matches_frozen() {
        let adapter = LoraAdapter::new(4, 6, 2, 1.0, 11);
        let delta = adapter.delta();
        assert_eq!(delta.rows(), 4);
        assert_eq!(delta.cols(), 6);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_rank_panics() {
        LoraAdapter::new(2, 2, 0, 1.0, 0);
    }
}
