//! A small row-major dense matrix.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix built from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Build from nested vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in &rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: n_rows, cols: n_cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow one row as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable access to one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat access to the underlying data (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable access to the underlying data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scaled copy.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * factor).collect() }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Numerically-stable softmax.
pub fn softmax(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = values.iter().map(|v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// L2-normalize a vector in place (no-op for the zero vector).
pub fn l2_normalize(values: &mut [f64]) {
    let norm = values.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in values {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.as_slice(), &[0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matvec_and_matmul() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let identity = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(m.matmul(&identity), m);
        let product = m.matmul(&m);
        assert_eq!(product.get(0, 0), 7.0);
        assert_eq!(product.get(1, 1), 22.0);
    }

    #[test]
    fn transpose_add_scale_norm() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 3.0);
        let s = m.scale(2.0);
        assert_eq!(s.row(0), &[2.0, 4.0, 6.0]);
        let a = m.add(&m);
        assert_eq!(a.row(0), &[2.0, 4.0, 6.0]);
        assert!((m.frobenius_norm() - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn random_matrix_is_seeded_and_bounded() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = Matrix::random(4, 4, 0.5, &mut r1);
        let b = Matrix::random(4, 4, 0.5, &mut r2);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let sm = softmax(&[1.0, 1.0, 1.0]);
        assert!((sm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((sm[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!(softmax(&[]).is_empty());
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-12);
        let mut zero = vec![0.0, 0.0];
        l2_normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let sm = softmax(&[1000.0, 1001.0]);
        assert!(sm.iter().all(|v| v.is_finite()));
        assert!(sm[1] > sm[0]);
    }
}
