//! A one-hidden-layer multi-layer perceptron regressor.
//!
//! Used where a linear head underfits (the CLS III accuracy predictor when
//! trained on rich text embeddings). Trained with plain backpropagation and
//! SGD; tanh activation keeps the math small and stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::matrix::dot;

/// One-hidden-layer MLP with tanh activation and linear outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpRegressor {
    inputs: usize,
    hidden: usize,
    outputs: usize,
    /// hidden × inputs
    w1: Vec<f64>,
    b1: Vec<f64>,
    /// outputs × hidden
    w2: Vec<f64>,
    b2: Vec<f64>,
}

impl MlpRegressor {
    /// Create an MLP with Xavier-style random initialization (seeded).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, hidden: usize, outputs: usize, seed: u64) -> Self {
        assert!(inputs > 0 && hidden > 0 && outputs > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let s1 = (2.0 / (inputs + hidden) as f64).sqrt();
        let s2 = (2.0 / (hidden + outputs) as f64).sqrt();
        MlpRegressor {
            inputs,
            hidden,
            outputs,
            w1: (0..inputs * hidden).map(|_| rng.gen_range(-s1..s1)).collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden * outputs).map(|_| rng.gen_range(-s2..s2)).collect(),
            b2: vec![0.0; outputs],
        }
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    fn hidden_activations(&self, x: &[f64]) -> Vec<f64> {
        (0..self.hidden)
            .map(|h| (dot(&self.w1[h * self.inputs..(h + 1) * self.inputs], x) + self.b1[h]).tanh())
            .collect()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.inputs()`.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.inputs, "input dimension mismatch");
        let h = self.hidden_activations(x);
        (0..self.outputs)
            .map(|o| dot(&self.w2[o * self.hidden..(o + 1) * self.hidden], &h) + self.b2[o])
            .collect()
    }

    /// Train with mini-batch SGD on the mean squared error.
    ///
    /// # Panics
    ///
    /// Panics on sample/target count or dimension mismatches.
    pub fn fit(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        epochs: usize,
        learning_rate: f64,
        batch_size: usize,
        seed: u64,
    ) {
        assert_eq!(xs.len(), ys.len(), "sample/target count mismatch");
        if xs.is_empty() {
            return;
        }
        let batch_size = batch_size.clamp(1, xs.len());
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..epochs {
            // Fisher–Yates shuffle for the epoch ordering.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(batch_size) {
                self.train_batch(xs, ys, batch, learning_rate);
            }
        }
    }

    fn train_batch(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], batch: &[usize], learning_rate: f64) {
        let mut grad_w1 = vec![0.0; self.w1.len()];
        let mut grad_b1 = vec![0.0; self.b1.len()];
        let mut grad_w2 = vec![0.0; self.w2.len()];
        let mut grad_b2 = vec![0.0; self.b2.len()];
        let n = batch.len() as f64;
        for &idx in batch {
            let x = &xs[idx];
            let y = &ys[idx];
            assert_eq!(y.len(), self.outputs, "target dimension mismatch");
            let h = self.hidden_activations(x);
            let pred: Vec<f64> = (0..self.outputs)
                .map(|o| dot(&self.w2[o * self.hidden..(o + 1) * self.hidden], &h) + self.b2[o])
                .collect();
            // Output layer gradients.
            let mut delta_h = vec![0.0; self.hidden];
            for o in 0..self.outputs {
                let err = 2.0 * (pred[o] - y[o]) / n;
                grad_b2[o] += err;
                for j in 0..self.hidden {
                    grad_w2[o * self.hidden + j] += err * h[j];
                    delta_h[j] += err * self.w2[o * self.hidden + j];
                }
            }
            // Hidden layer gradients (tanh' = 1 - h²).
            for j in 0..self.hidden {
                let local = delta_h[j] * (1.0 - h[j] * h[j]);
                grad_b1[j] += local;
                for i in 0..self.inputs {
                    grad_w1[j * self.inputs + i] += local * x[i];
                }
            }
        }
        for (w, g) in self.w1.iter_mut().zip(&grad_w1) {
            *w -= learning_rate * g;
        }
        for (b, g) in self.b1.iter_mut().zip(&grad_b1) {
            *b -= learning_rate * g;
        }
        for (w, g) in self.w2.iter_mut().zip(&grad_w2) {
            *w -= learning_rate * g;
        }
        for (b, g) in self.b2.iter_mut().zip(&grad_b2) {
            *b -= learning_rate * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_fits_a_nonlinear_function() {
        // y = x^2 on [-1, 1]: impossible for a linear model, easy for an MLP.
        let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![-1.0 + 2.0 * i as f64 / 79.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * x[0]]).collect();
        let mut model = MlpRegressor::new(1, 16, 1, 7);
        model.fit(&xs, &ys, 1500, 0.05, 16, 3);
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let p = model.predict(x)[0];
                (p - y[0]) * (p - y[0])
            })
            .sum::<f64>()
            / xs.len() as f64;
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    fn mlp_multi_output_shapes() {
        let model = MlpRegressor::new(4, 8, 3, 1);
        assert_eq!(model.predict(&[0.0; 4]).len(), 3);
        assert_eq!(model.inputs(), 4);
        assert_eq!(model.outputs(), 3);
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0]]).collect();
        let mut a = MlpRegressor::new(1, 4, 1, 5);
        let mut b = MlpRegressor::new(1, 4, 1, 5);
        a.fit(&xs, &ys, 50, 0.1, 4, 9);
        b.fit(&xs, &ys, 50, 0.1, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut model = MlpRegressor::new(2, 4, 1, 0);
        let before = model.clone();
        model.fit(&[], &[], 10, 0.1, 8, 0);
        assert_eq!(model, before);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_length_panics() {
        MlpRegressor::new(3, 4, 1, 0).predict(&[0.0; 2]);
    }
}
