//! First-order optimizers operating on flat parameter slices.

use serde::{Deserialize, Serialize};

/// A first-order optimizer updating parameters in place from gradients.
pub trait Optimizer {
    /// Apply one update step.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != grads.len()`.
    fn step(&mut self, params: &mut [f64], grads: &[f64]);

    /// Reset any accumulated state (momentum, moment estimates).
    fn reset(&mut self);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f64, momentum: f64) -> Self {
        Sgd { learning_rate, momentum: momentum.clamp(0.0, 0.999), velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for i in 0..params.len() {
            self.velocity[i] = self.momentum * self.velocity[i] - self.learning_rate * grads[i];
            params[i] += self.velocity[i];
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay rate for the first moment.
    pub beta1: f64,
    /// Exponential decay rate for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub epsilon: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Adam with the canonical hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(learning_rate: f64) -> Self {
        Adam { learning_rate, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, m: Vec::new(), v: Vec::new(), t: 0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "parameter/gradient length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with each optimizer.
    fn minimize<O: Optimizer>(mut opt: O, steps: usize) -> f64 {
        let mut params = vec![0.0f64];
        for _ in 0..steps {
            let grads = vec![2.0 * (params[0] - 3.0)];
            opt.step(&mut params, &grads);
        }
        params[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Sgd::new(0.1), 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let plain = minimize(Sgd::new(0.01), 100);
        let momentum = minimize(Sgd::with_momentum(0.01, 0.9), 100);
        assert!((momentum - 3.0).abs() < (plain - 3.0).abs());
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Adam::new(0.1), 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut params = vec![0.0];
        opt.step(&mut params, &[1.0]);
        opt.reset();
        let mut opt2 = Sgd::with_momentum(0.1, 0.9);
        let mut params2 = vec![params[0]];
        opt.step(&mut params, &[1.0]);
        opt2.step(&mut params2, &[1.0]);
        assert!((params[0] - params2[0]).abs() < 1e-12, "reset must behave like a fresh optimizer");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Sgd::new(0.1).step(&mut [0.0, 1.0], &[1.0]);
    }
}
