//! Resource-cost models for each parser family.
//!
//! The absolute numbers are calibrated so the *relative* throughputs match
//! the paper: on one Polaris-like node (32 CPU cores, 4 A100 GPUs) Nougat
//! parses ≈1–2 PDF/s, PyMuPDF is ≈135× faster, pypdf ≈13× slower than
//! PyMuPDF, and Marker is the slowest at ≈0.1 PDF/s. Vision-Transformer
//! parsers additionally pay a large one-time model-load cost (≈15 s), which
//! is why the warm-start optimization in §5.2 matters.

use serde::{Deserialize, Serialize};

use crate::traits::ParserKind;

/// Resources consumed by a parse (or estimated for one).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceCost {
    /// CPU-core seconds.
    pub cpu_seconds: f64,
    /// GPU seconds.
    pub gpu_seconds: f64,
    /// Peak host memory in MiB.
    pub cpu_memory_mb: f64,
    /// Peak device memory in MiB.
    pub gpu_memory_mb: f64,
}

impl ResourceCost {
    /// Cost with only a CPU-seconds component.
    pub fn cpu(seconds: f64) -> Self {
        ResourceCost { cpu_seconds: seconds, ..Default::default() }
    }

    /// Cost with only a GPU-seconds component.
    pub fn gpu(seconds: f64) -> Self {
        ResourceCost { gpu_seconds: seconds, ..Default::default() }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &ResourceCost) -> ResourceCost {
        ResourceCost {
            cpu_seconds: self.cpu_seconds + other.cpu_seconds,
            gpu_seconds: self.gpu_seconds + other.gpu_seconds,
            cpu_memory_mb: self.cpu_memory_mb.max(other.cpu_memory_mb),
            gpu_memory_mb: self.gpu_memory_mb.max(other.gpu_memory_mb),
        }
    }

    /// Wall-clock seconds on a dedicated worker: the dominant resource
    /// (CPU work runs on one core, GPU work on one device).
    pub fn wall_seconds(&self) -> f64 {
        self.cpu_seconds.max(self.gpu_seconds)
    }

    /// Scale all time components by a factor (memory is unchanged).
    pub fn scaled(&self, factor: f64) -> ResourceCost {
        ResourceCost {
            cpu_seconds: self.cpu_seconds * factor,
            gpu_seconds: self.gpu_seconds * factor,
            ..*self
        }
    }
}

impl std::ops::Add for ResourceCost {
    type Output = ResourceCost;

    fn add(self, rhs: ResourceCost) -> ResourceCost {
        ResourceCost::add(&self, &rhs)
    }
}

/// Hardware description of one compute node (defaults to a Polaris node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Number of CPU cores usable by parser workers.
    pub cpu_cores: usize,
    /// Number of GPUs.
    pub gpus: usize,
    /// Host memory in GiB.
    pub memory_gb: f64,
    /// Device memory per GPU in GiB.
    pub gpu_memory_gb: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // Polaris: AMD Milan 32 cores, 512 GB RAM, 4× A100 40 GB.
        NodeSpec { cpu_cores: 32, gpus: 4, memory_gb: 512.0, gpu_memory_gb: 40.0 }
    }
}

/// Per-parser cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Which parser this model describes.
    pub parser: ParserKind,
    /// CPU seconds per page.
    pub cpu_seconds_per_page: f64,
    /// GPU seconds per page.
    pub gpu_seconds_per_page: f64,
    /// One-time model-load seconds (paid per cold worker start).
    pub model_load_seconds: f64,
    /// Host memory per worker in MiB.
    pub cpu_memory_mb: f64,
    /// Device memory per worker in MiB.
    pub gpu_memory_mb: f64,
    /// Extra per-page multiplier applied for each unit of content difficulty
    /// (equations/tables raise recognition cost).
    pub difficulty_multiplier: f64,
}

impl CostModel {
    /// The calibrated cost model for a parser.
    pub fn for_parser(parser: ParserKind) -> CostModel {
        match parser {
            ParserKind::PyMuPdf => CostModel {
                parser,
                cpu_seconds_per_page: 0.02,
                gpu_seconds_per_page: 0.0,
                model_load_seconds: 0.0,
                cpu_memory_mb: 180.0,
                gpu_memory_mb: 0.0,
                difficulty_multiplier: 0.1,
            },
            ParserKind::Pypdf => CostModel {
                parser,
                cpu_seconds_per_page: 0.25,
                gpu_seconds_per_page: 0.0,
                model_load_seconds: 0.0,
                cpu_memory_mb: 250.0,
                gpu_memory_mb: 0.0,
                difficulty_multiplier: 0.15,
            },
            ParserKind::Tesseract => CostModel {
                parser,
                cpu_seconds_per_page: 1.9,
                gpu_seconds_per_page: 0.0,
                model_load_seconds: 1.0,
                cpu_memory_mb: 600.0,
                gpu_memory_mb: 0.0,
                difficulty_multiplier: 0.3,
            },
            ParserKind::Grobid => CostModel {
                parser,
                cpu_seconds_per_page: 0.9,
                gpu_seconds_per_page: 0.0,
                model_load_seconds: 6.0,
                cpu_memory_mb: 2_000.0,
                gpu_memory_mb: 0.0,
                difficulty_multiplier: 0.2,
            },
            ParserKind::Nougat => CostModel {
                parser,
                cpu_seconds_per_page: 0.05,
                gpu_seconds_per_page: 0.45,
                model_load_seconds: 15.0,
                cpu_memory_mb: 3_000.0,
                gpu_memory_mb: 14_000.0,
                difficulty_multiplier: 0.35,
            },
            ParserKind::Marker => CostModel {
                parser,
                cpu_seconds_per_page: 0.4,
                gpu_seconds_per_page: 3.6,
                model_load_seconds: 22.0,
                cpu_memory_mb: 4_000.0,
                gpu_memory_mb: 18_000.0,
                difficulty_multiplier: 0.5,
            },
        }
    }

    /// Cost of parsing `pages` pages of the given mean difficulty (in
    /// `[0, 1]`), excluding the model-load cost.
    pub fn document_cost(&self, pages: usize, mean_difficulty: f64) -> ResourceCost {
        let factor = 1.0 + self.difficulty_multiplier * mean_difficulty.clamp(0.0, 1.0);
        ResourceCost {
            cpu_seconds: self.cpu_seconds_per_page * pages as f64 * factor,
            gpu_seconds: self.gpu_seconds_per_page * pages as f64 * factor,
            cpu_memory_mb: self.cpu_memory_mb,
            gpu_memory_mb: self.gpu_memory_mb,
        }
    }

    /// The one-time model-load cost for a cold worker.
    pub fn load_cost(&self) -> ResourceCost {
        if self.parser.requires_gpu() {
            ResourceCost {
                cpu_seconds: self.model_load_seconds * 0.3,
                gpu_seconds: self.model_load_seconds,
                cpu_memory_mb: self.cpu_memory_mb,
                gpu_memory_mb: self.gpu_memory_mb,
            }
        } else {
            ResourceCost {
                cpu_seconds: self.model_load_seconds,
                gpu_seconds: 0.0,
                cpu_memory_mb: self.cpu_memory_mb,
                gpu_memory_mb: 0.0,
            }
        }
    }

    /// Steady-state single-node throughput in documents per second, assuming
    /// documents of `pages_per_doc` pages, warm workers, and perfect
    /// parallelism over the node's cores/GPUs.
    pub fn node_throughput(&self, node: &NodeSpec, pages_per_doc: f64) -> f64 {
        let per_doc = self.document_cost(pages_per_doc.ceil() as usize, 0.3);
        let cpu_rate = if per_doc.cpu_seconds > 0.0 {
            node.cpu_cores as f64 / per_doc.cpu_seconds
        } else {
            f64::INFINITY
        };
        let gpu_rate =
            if per_doc.gpu_seconds > 0.0 { node.gpus as f64 / per_doc.gpu_seconds } else { f64::INFINITY };
        let rate = cpu_rate.min(gpu_rate);
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    }
}

/// Content difficulty of a page's text in `[0, 1]`: the share of characters
/// that are math/markup symbols rather than prose. Equation- and table-heavy
/// pages cost recognition parsers more and are where extraction output
/// degrades.
pub fn content_difficulty(text: &str) -> f64 {
    let mut symbols = 0usize;
    let mut total = 0usize;
    for c in text.chars() {
        if c.is_whitespace() {
            continue;
        }
        total += 1;
        if !c.is_alphanumeric() && c != '.' && c != ',' {
            symbols += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        ((symbols as f64 / total as f64) * 3.0).clamp(0.0, 1.0)
    }
}

/// Single-node throughput of every parser, `(kind, docs/s)`, for documents of
/// the given average length. This regenerates the Figure 3 legend and the
/// §5.1 throughput ratios.
pub fn node_throughput_table(node: &NodeSpec, pages_per_doc: f64) -> Vec<(ParserKind, f64)> {
    ParserKind::ALL
        .iter()
        .map(|&kind| (kind, CostModel::for_parser(kind).node_throughput(node, pages_per_doc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_cost_arithmetic() {
        let a =
            ResourceCost { cpu_seconds: 1.0, gpu_seconds: 2.0, cpu_memory_mb: 100.0, gpu_memory_mb: 10.0 };
        let b = ResourceCost { cpu_seconds: 0.5, gpu_seconds: 1.0, cpu_memory_mb: 300.0, gpu_memory_mb: 5.0 };
        let c = a + b;
        assert!((c.cpu_seconds - 1.5).abs() < 1e-12);
        assert!((c.gpu_seconds - 3.0).abs() < 1e-12);
        assert_eq!(c.cpu_memory_mb, 300.0);
        assert_eq!(c.gpu_memory_mb, 10.0);
        assert_eq!(a.wall_seconds(), 2.0);
        assert!((a.scaled(2.0).cpu_seconds - 2.0).abs() < 1e-12);
        assert_eq!(ResourceCost::cpu(3.0).cpu_seconds, 3.0);
        assert_eq!(ResourceCost::gpu(3.0).gpu_seconds, 3.0);
    }

    #[test]
    fn relative_throughputs_match_the_paper() {
        let node = NodeSpec::default();
        let pages = 10.0;
        let t = |k: ParserKind| CostModel::for_parser(k).node_throughput(&node, pages);

        let pymupdf = t(ParserKind::PyMuPdf);
        let pypdf = t(ParserKind::Pypdf);
        let nougat = t(ParserKind::Nougat);
        let marker = t(ParserKind::Marker);
        let tesseract = t(ParserKind::Tesseract);

        // Nougat parses roughly 1–2 PDF/s on a 4-GPU node.
        assert!((0.5..3.0).contains(&nougat), "nougat = {nougat}");
        // PyMuPDF ≈ 135× Nougat (paper §5.1); allow a broad band.
        let ratio = pymupdf / nougat;
        assert!((80.0..250.0).contains(&ratio), "pymupdf/nougat = {ratio}");
        // PyMuPDF ≈ 13× pypdf.
        let ratio = pymupdf / pypdf;
        assert!((8.0..20.0).contains(&ratio), "pymupdf/pypdf = {ratio}");
        // Marker is the slowest of all parsers.
        for k in ParserKind::ALL {
            if k != ParserKind::Marker {
                assert!(t(k) > marker, "{k} should outpace Marker");
            }
        }
        // OCR is orders of magnitude slower than extraction.
        assert!(pymupdf / tesseract > 50.0);
    }

    #[test]
    fn difficulty_raises_cost() {
        let model = CostModel::for_parser(ParserKind::Nougat);
        let easy = model.document_cost(10, 0.0);
        let hard = model.document_cost(10, 1.0);
        assert!(hard.gpu_seconds > easy.gpu_seconds);
        assert!(hard.wall_seconds() > easy.wall_seconds());
    }

    #[test]
    fn load_cost_respects_gpu_requirement() {
        let nougat = CostModel::for_parser(ParserKind::Nougat).load_cost();
        assert!(nougat.gpu_seconds >= 14.0);
        let pymupdf = CostModel::for_parser(ParserKind::PyMuPdf).load_cost();
        assert_eq!(pymupdf.gpu_seconds, 0.0);
        assert_eq!(pymupdf.cpu_seconds, 0.0);
    }

    #[test]
    fn throughput_table_covers_all_parsers() {
        let table = node_throughput_table(&NodeSpec::default(), 10.0);
        assert_eq!(table.len(), ParserKind::ALL.len());
        for (_, rate) in &table {
            assert!(*rate > 0.0);
            assert!(rate.is_finite());
        }
    }

    #[test]
    fn zero_page_document_costs_nothing_per_page() {
        let model = CostModel::for_parser(ParserKind::Tesseract);
        let c = model.document_cost(0, 0.5);
        assert_eq!(c.cpu_seconds, 0.0);
        assert_eq!(c.gpu_seconds, 0.0);
    }
}
