//! Run the whole parser zoo over documents and score every output.
//!
//! This is the shared workhorse behind the paper's Figure 3 (per-document
//! BLEU across parsers), the regression dataset used to train the selector
//! (per-parser BLEU targets), and the Tables 1–3 evaluation harness.

use docmodel::document::{DocId, Document};
use docmodel::spdf::{write_document, SpdfFile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use textmetrics::QualityReport;

use crate::registry::all_parsers;
use crate::traits::{ParseOutput, Parser, ParserKind};

/// One parser's scored output on one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParserEvaluation {
    /// Which parser ran.
    pub kind: ParserKind,
    /// The raw parse output.
    pub output: ParseOutput,
    /// Quality of the output against the document's ground truth.
    pub report: QualityReport,
}

/// All parsers' scored outputs on one document, plus the cheap first-page
/// extraction the selector conditions on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocumentEvaluation {
    /// Which document was evaluated.
    pub doc_id: DocId,
    /// PyMuPDF extraction of the first page (the selector's input signal).
    pub first_page_extraction: String,
    /// Number of pages in the document.
    pub pages: usize,
    /// Per-parser results in [`ParserKind::ALL`] order.
    pub per_parser: Vec<ParserEvaluation>,
}

impl DocumentEvaluation {
    /// The evaluation entry for a specific parser.
    pub fn for_parser(&self, kind: ParserKind) -> Option<&ParserEvaluation> {
        self.per_parser.iter().find(|p| p.kind == kind)
    }

    /// BLEU scores in [`ParserKind::ALL`] order (the selector's regression target).
    pub fn bleu_targets(&self) -> Vec<f64> {
        self.per_parser.iter().map(|p| p.report.bleu).collect()
    }

    /// The parser with the highest BLEU on this document.
    pub fn best_parser(&self) -> ParserKind {
        self.per_parser
            .iter()
            .max_by(|a, b| a.report.bleu.partial_cmp(&b.report.bleu).unwrap_or(std::cmp::Ordering::Equal))
            .map(|p| p.kind)
            .unwrap_or(ParserKind::PyMuPdf)
    }

    /// Mean BLEU across parsers — the paper's per-document difficulty proxy
    /// for the Figure 3 ranking (lower mean BLEU = harder document).
    pub fn mean_bleu(&self) -> f64 {
        if self.per_parser.is_empty() {
            return 0.0;
        }
        self.per_parser.iter().map(|p| p.report.bleu).sum::<f64>() / self.per_parser.len() as f64
    }
}

/// Evaluate one document with every parser.
///
/// The document is serialized to SPDF and each parser consumes the bytes, so
/// the full container path is exercised. `seed` controls the parsers'
/// stochastic failure modes.
pub fn evaluate_document(doc: &Document, seed: u64) -> DocumentEvaluation {
    let bytes = write_document(doc);
    let file = SpdfFile::parse(&bytes).expect("writer output must parse");
    let ground_truth = doc.ground_truth();
    let first_page_extraction = {
        let parser = crate::pymupdf::PyMuPdfParser::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1557);
        match parser.parse_file(&file, &mut rng) {
            Ok(out) => out.text.split('\u{c}').next().unwrap_or("").to_string(),
            Err(_) => String::new(),
        }
    };
    let mut per_parser = Vec::with_capacity(ParserKind::ALL.len());
    for parser in all_parsers() {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (0x9E3779B9u64.wrapping_mul(parser.kind().index() as u64 + 1)));
        let output = match parser.parse_file(&file, &mut rng) {
            Ok(out) => out,
            Err(_) => ParseOutput {
                parser: parser.kind(),
                text: String::new(),
                pages_parsed: 0,
                pages_total: doc.page_count(),
                cost: Default::default(),
            },
        };
        let report = QualityReport::compute(&output.text, &ground_truth, output.coverage());
        per_parser.push(ParserEvaluation { kind: parser.kind(), output, report });
    }
    DocumentEvaluation { doc_id: doc.id, first_page_extraction, pages: doc.page_count(), per_parser }
}

/// Evaluate a whole corpus. Seeds are derived per document so results are
/// order-independent.
pub fn evaluate_corpus(documents: &[Document], seed: u64) -> Vec<DocumentEvaluation> {
    documents
        .iter()
        .map(|doc| evaluate_document(doc, seed ^ doc.id.0.wrapping_mul(0x517c_c1b7_2722_0a95)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn docs(n: usize) -> Vec<Document> {
        DocumentGenerator::new(GeneratorConfig {
            n_documents: n,
            seed: 51,
            min_pages: 1,
            max_pages: 3,
            ..Default::default()
        })
        .generate_many(n)
    }

    #[test]
    fn evaluation_covers_all_parsers_with_bounded_scores() {
        let d = docs(2);
        let eval = evaluate_document(&d[0], 9);
        assert_eq!(eval.per_parser.len(), ParserKind::ALL.len());
        assert_eq!(eval.bleu_targets().len(), ParserKind::ALL.len());
        for p in &eval.per_parser {
            assert!((0.0..=1.0).contains(&p.report.bleu));
            assert!((0.0..=1.0).contains(&p.report.coverage));
        }
        assert!((0.0..=1.0).contains(&eval.mean_bleu()));
        assert!(eval.for_parser(ParserKind::Nougat).is_some());
    }

    #[test]
    fn first_page_extraction_is_captured() {
        let d = docs(1);
        let eval = evaluate_document(&d[0], 3);
        // Born-digital documents usually have a usable first-page extraction.
        if d[0].text_layer.has_text() {
            assert!(!eval.first_page_extraction.is_empty());
        }
    }

    #[test]
    fn evaluation_is_deterministic_and_seed_sensitive() {
        let d = docs(1);
        let a = evaluate_document(&d[0], 5);
        let b = evaluate_document(&d[0], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_evaluation_matches_per_document_calls() {
        let d = docs(3);
        let all = evaluate_corpus(&d, 7);
        assert_eq!(all.len(), 3);
        let single = evaluate_document(&d[1], 7 ^ d[1].id.0.wrapping_mul(0x517c_c1b7_2722_0a95));
        assert_eq!(all[1], single);
    }

    #[test]
    fn best_parser_is_argmax_of_bleu() {
        let d = docs(1);
        let eval = evaluate_document(&d[0], 13);
        let best = eval.best_parser();
        let best_bleu = eval.for_parser(best).unwrap().report.bleu;
        for p in &eval.per_parser {
            assert!(best_bleu >= p.report.bleu);
        }
    }
}
