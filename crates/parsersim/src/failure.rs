//! Failure-mode helpers shared by the parser simulators.
//!
//! Each helper corresponds to a failure class from the paper's Figure 1 or to
//! an output-format artifact (markdown emission by ViT parsers) discussed in
//! the user-preference study.

use rand::Rng;

/// Decide, per page, whether the parser drops it entirely (Figure 1g — the
/// most severe failure mode, observed most often with the otherwise most
/// accurate parser). Returns a keep/drop mask of length `pages`.
pub fn page_drop_mask<R: Rng + ?Sized>(pages: usize, drop_probability: f64, rng: &mut R) -> Vec<bool> {
    let p = drop_probability.clamp(0.0, 1.0);
    (0..pages).map(|_| !rng.gen_bool(p)).collect()
}

/// Convert plain text into markdown-flavoured output the way Nougat/Marker
/// do: short lines become headings, table rows gain pipes.
pub fn markdownify(text: &str, heading_level: usize) -> String {
    let hashes = "#".repeat(heading_level.clamp(1, 6));
    text.lines()
        .map(|line| {
            let words = line.split_whitespace().count();
            if words > 0 && words <= 6 && !line.starts_with('-') && !line.contains('|') {
                format!("{hashes} {line}")
            } else if line.contains(" | ") {
                format!("| {} |", line.trim())
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Simulate the auto-regressive repetition loops ViT decoders fall into:
/// with probability `probability`, the final `window` words of the page are
/// repeated `repeats` times.
pub fn repetition_loop<R: Rng + ?Sized>(text: &str, probability: f64, rng: &mut R) -> String {
    if !rng.gen_bool(probability.clamp(0.0, 1.0)) {
        return text.to_string();
    }
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() < 8 {
        return text.to_string();
    }
    let window = rng.gen_range(3..8usize).min(words.len());
    let repeats = rng.gen_range(3..10usize);
    let tail = words[words.len() - window..].join(" ");
    let mut out = text.to_string();
    for _ in 0..repeats {
        out.push(' ');
        out.push_str(&tail);
    }
    out
}

/// Randomly flip the case of characters (an artifact of damaged font
/// encodings in extraction output; turns pH into Ph and similar).
pub fn corrupt_case<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    let rate = rate.clamp(0.0, 1.0);
    text.chars()
        .map(|c| {
            if c.is_ascii_alphabetic() && rng.gen_bool(rate) {
                if c.is_ascii_uppercase() {
                    c.to_ascii_lowercase()
                } else {
                    c.to_ascii_uppercase()
                }
            } else {
                c
            }
        })
        .collect()
}

/// Drop lines for which `predicate` returns true (structured extractors such
/// as GROBID silently skip content they cannot classify).
pub fn drop_lines<F: Fn(&str) -> bool>(text: &str, predicate: F) -> String {
    text.lines().filter(|line| !predicate(line)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn page_drop_mask_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(page_drop_mask(10, 0.0, &mut rng).iter().all(|&k| k));
        assert!(page_drop_mask(10, 1.0, &mut rng).iter().all(|&k| !k));
        assert_eq!(page_drop_mask(0, 0.5, &mut rng).len(), 0);
    }

    #[test]
    fn page_drop_mask_respects_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mask = page_drop_mask(2000, 0.3, &mut rng);
        let dropped = mask.iter().filter(|&&k| !k).count() as f64 / mask.len() as f64;
        assert!((0.2..0.4).contains(&dropped), "dropped fraction = {dropped}");
    }

    #[test]
    fn markdownify_marks_headings_and_tables() {
        let text = "Introduction\nThis is a longer paragraph with more than six words in it.\na | b | c";
        let md = markdownify(text, 2);
        assert!(md.contains("## Introduction"));
        assert!(md.contains("| a | b | c |"));
        assert!(md.contains("longer paragraph"));
    }

    #[test]
    fn repetition_loop_appends_tail_copies() {
        let text = "the adaptive parser routes documents according to predicted accuracy values";
        let mut rng = StdRng::seed_from_u64(3);
        let with = repetition_loop(text, 1.0, &mut rng);
        assert!(with.len() > text.len());
        assert!(with.starts_with(text));
        let without = repetition_loop(text, 0.0, &mut rng);
        assert_eq!(without, text);
        // Short text is untouched even when triggered.
        assert_eq!(repetition_loop("too short", 1.0, &mut rng), "too short");
    }

    #[test]
    fn corrupt_case_flips_only_letters() {
        let mut rng = StdRng::seed_from_u64(4);
        let text = "pH 7.4 at 37C";
        let corrupted = corrupt_case(text, 1.0, &mut rng);
        assert_eq!(corrupted.to_lowercase(), text.to_lowercase());
        assert_ne!(corrupted, text);
        assert_eq!(corrupt_case(text, 0.0, &mut rng), text);
    }

    #[test]
    fn drop_lines_filters_by_predicate() {
        let text = "keep this\nTable: drop this\nkeep that";
        let out = drop_lines(text, |l| l.starts_with("Table:"));
        assert_eq!(out, "keep this\nkeep that");
    }
}
