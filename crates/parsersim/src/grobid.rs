//! GROBID simulator: structure-oriented extraction.
//!
//! GROBID excels at bibliographic structure (references, affiliations,
//! metadata) but produces comparatively poor full-text output: equations,
//! tables and figures are dropped or mis-segmented, and whole sections can be
//! skipped when its layout models fail — which is why it has the lowest
//! coverage and BLEU among the paper's parsers despite being "smart".

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::{Rng, RngCore};

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::failure;
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// GROBID structured-extraction simulator.
#[derive(Debug, Clone)]
pub struct GrobidParser {
    cost: CostModel,
}

impl Default for GrobidParser {
    fn default() -> Self {
        Self::new()
    }
}

impl GrobidParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        GrobidParser { cost: CostModel::for_parser(ParserKind::Grobid) }
    }
}

impl Parser for GrobidParser {
    fn kind(&self) -> ParserKind {
        ParserKind::Grobid
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        // GROBID's segmentation models occasionally skip entire pages.
        let keep = failure::page_drop_mask(file.pages.len(), 0.16, rng);
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        for (page, keep_page) in file.pages.iter().zip(keep) {
            let source = if page.embedded_text.trim().is_empty() {
                // Falls back to its internal OCR pass on image-only pages.
                corrupt::ocr_noise(&page.glyph_text, 0.5 + 0.5 * page.image.legibility(), rng)
            } else {
                page.embedded_text.clone()
            };
            difficulty_sum += content_difficulty(&source);
            if !keep_page || source.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            // Structure-oriented output: equations, tables, figures and list
            // markers are not part of the body text model and get dropped.
            let text = failure::drop_lines(&source, |line| {
                let t = line.trim_start();
                t.starts_with("$$")
                    || t.starts_with("Table:")
                    || t.starts_with("Figure:")
                    || t.starts_with("- ")
            });
            // Inline math fragments vanish too.
            let text = corrupt::mangle_latex(&text);
            // Sentence segmentation artifacts.
            let text = corrupt::inject_whitespace(&text, 0.05, rng);
            // Some body paragraphs are misclassified as front/back matter.
            let text = text.lines().filter(|_| !rng.gen_bool(0.10)).collect::<Vec<_>>().join("\n");
            if text.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            pages_parsed += 1;
            out_pages.push(text);
        }
        let mean_difficulty = difficulty_sum / file.pages.len() as f64;
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost: self.cost.document_cost(file.pages.len(), mean_difficulty),
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pymupdf::PyMuPdfParser;
    use crate::testutil::{doc_with_quality, parse_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;

    #[test]
    fn grobid_drops_structured_content() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 4);
        let out = parse_doc(&GrobidParser::new(), &file);
        assert!(!out.text.contains("Table:"));
        assert!(!out.text.contains("Figure:"));
        assert!(!out.text.contains("$$"));
    }

    #[test]
    fn grobid_has_lower_coverage_and_bleu_than_pymupdf_on_clean_docs() {
        // Aggregate over several seeds to smooth out page-drop randomness.
        let (doc, file) = doc_with_quality(TextLayerQuality::Clean, 8);
        let gt = doc.ground_truth();
        let mut grobid_cov = 0.0;
        let mut grobid_bleu = 0.0;
        let mut pymupdf_bleu = 0.0;
        let n = 6;
        for seed in 0..n {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let g = GrobidParser::new().parse_file(&file, &mut rng).unwrap();
            grobid_cov += g.coverage();
            grobid_bleu += sentence_bleu(&g.text, &gt);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = PyMuPdfParser::new().parse_file(&file, &mut rng).unwrap();
            pymupdf_bleu += sentence_bleu(&p.text, &gt);
        }
        let n = n as f64;
        assert!(grobid_cov / n < 0.98, "coverage = {}", grobid_cov / n);
        assert!(grobid_bleu / n < pymupdf_bleu / n, "grobid must trail pymupdf on clean text");
    }

    #[test]
    fn grobid_still_produces_text_on_scanned_documents() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Missing, 4);
        let out = parse_doc(&GrobidParser::new(), &file);
        assert!(out.token_count() > 20, "internal OCR fallback should produce text");
    }

    #[test]
    fn grobid_is_cpu_only() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&GrobidParser::new(), &file);
        assert_eq!(out.cost.gpu_seconds, 0.0);
        assert!(out.cost.cpu_seconds > 0.5);
    }
}
