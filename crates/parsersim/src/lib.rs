//! Simulators of the PDF parsers orchestrated by AdaParse.
//!
//! The paper's parser zoo spans three families with wildly different
//! cost/accuracy profiles:
//!
//! * **text extraction** — [`pymupdf`] (fast, best lightweight) and
//!   [`pypdf`] (slower pure-Python extraction with heavier artifacts),
//! * **OCR / structured extraction** — [`tesseract`] (LSTM OCR over page
//!   images) and [`grobid`] (structure-oriented extraction that drops
//!   non-body content),
//! * **Vision-Transformer recognition** — [`nougat`] (highest quality,
//!   GPU-bound, occasionally drops whole pages) and [`marker`] (layout
//!   detection + texify, markdown-flavoured output).
//!
//! Each simulator implements the [`Parser`] trait: it takes SPDF bytes,
//! performs the byte-level parse, produces output text with the family's
//! characteristic failure modes (paper Figure 1), and reports a
//! [`ResourceCost`] drawn from a cost model calibrated to the paper's
//! relative throughputs (PyMuPDF ≈ 135× Nougat, ≈ 13× pypdf, Marker slowest).
//!
//! # Example
//!
//! ```
//! use parsersim::{registry, ParserKind};
//! use rand::SeedableRng;
//!
//! let parser = registry::parser_for(ParserKind::PyMuPdf);
//! assert_eq!(parser.kind(), ParserKind::PyMuPdf);
//! assert!(!parser.requires_gpu());
//! ```

pub mod cost;
pub mod evaluate;
pub mod failure;
pub mod grobid;
pub mod marker;
pub mod nougat;
pub mod pymupdf;
pub mod pypdf;
pub mod registry;
pub mod tesseract;
pub mod traits;

pub use cost::{CostModel, NodeSpec, ResourceCost};
pub use evaluate::{evaluate_corpus, evaluate_document, DocumentEvaluation, ParserEvaluation};
pub use registry::{
    all_parsers, category_quality_prior, page_dollars, parser_for, quality_prior, FrontierEntry,
    ParserFrontier, ParserPool, GPU_DOLLAR_RATIO,
};
pub use traits::{ParseError, ParseOutput, Parser, ParserKind};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for the per-parser test suites.

    use docmodel::document::Document;
    use docmodel::spdf::{write_document, SpdfFile};
    use docmodel::textlayer::{TextLayer, TextLayerQuality};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    use crate::traits::{ParseOutput, Parser};

    /// Generate one document with the requested text-layer quality and page
    /// count, returning both the document (for ground truth) and its parsed
    /// SPDF representation (what parsers consume).
    pub fn doc_with_quality(quality: TextLayerQuality, pages: usize) -> (Document, SpdfFile) {
        let mut generator = DocumentGenerator::new(GeneratorConfig {
            n_documents: 1,
            seed: 4242,
            min_pages: pages,
            max_pages: pages,
            scanned_fraction: 0.0,
            ..Default::default()
        });
        let mut doc = generator.generate();
        let gt = doc.ground_truth_pages();
        let mut rng = StdRng::seed_from_u64(7);
        doc.text_layer = TextLayer::from_ground_truth(&gt, quality, &mut rng);
        let file = SpdfFile::parse(&write_document(&doc)).expect("roundtrip");
        (doc, file)
    }

    /// Generate a scanned document (missing text layer); `severe` controls
    /// how degraded the page images are.
    pub fn scanned_doc(pages: usize, severe: bool) -> (Document, SpdfFile) {
        let mut generator = DocumentGenerator::new(GeneratorConfig {
            n_documents: 1,
            seed: 777,
            min_pages: pages,
            max_pages: pages,
            scanned_fraction: 0.0,
            ..Default::default()
        });
        let mut doc = generator.generate();
        doc.text_layer = TextLayer::missing(doc.page_count());
        let mut rng = StdRng::seed_from_u64(31);
        doc.image_layer = docmodel::imagelayer::ImageLayer::scanned(doc.page_count(), &mut rng);
        if severe {
            doc.image_layer.degrade_all(&mut rng);
            doc.image_layer.degrade_all(&mut rng);
        }
        let file = SpdfFile::parse(&write_document(&doc)).expect("roundtrip");
        (doc, file)
    }

    /// Parse with a fixed seed.
    pub fn parse_doc(parser: &dyn Parser, file: &SpdfFile) -> ParseOutput {
        let mut rng = StdRng::seed_from_u64(99);
        parser.parse_file(file, &mut rng).expect("parse")
    }
}
