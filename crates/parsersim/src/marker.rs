//! Marker simulator: layout detection followed by per-element recognition.
//!
//! Marker runs an explicit layout-detection stage before recognizing each
//! element with texify, which gives it the highest page coverage of all
//! parsers, markdown-formatted output, but slightly lower text fidelity than
//! Nougat and the worst throughput of the zoo (≈0.1 PDF/s per node).

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::{Rng, RngCore};

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::failure;
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// Marker recognition simulator.
#[derive(Debug, Clone)]
pub struct MarkerParser {
    cost: CostModel,
}

impl Default for MarkerParser {
    fn default() -> Self {
        Self::new()
    }
}

impl MarkerParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        MarkerParser { cost: CostModel::for_parser(ParserKind::Marker) }
    }
}

impl Parser for MarkerParser {
    fn kind(&self) -> ParserKind {
        ParserKind::Marker
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        // Layout detection almost never loses a whole page.
        let keep = failure::page_drop_mask(file.pages.len(), 0.02, rng);
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        for (page, keep_page) in file.pages.iter().zip(keep) {
            let glyphs = page.glyph_text.as_str();
            difficulty_sum += content_difficulty(glyphs);
            if !keep_page || glyphs.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            let legibility = page.image.legibility();
            // texify keeps most LaTeX, but layout segmentation sometimes
            // hands an equation block to the plain-text recognizer.
            let text = if rng.gen_bool(0.4) { corrupt::mangle_latex(glyphs) } else { glyphs.to_string() };
            let text = corrupt::ocr_noise(&text, 0.78 + 0.22 * legibility, rng);
            // Aggressive markdown conversion (headings, table pipes).
            let text = failure::markdownify(&text, 1);
            pages_parsed += 1;
            out_pages.push(text);
        }
        let mean_difficulty = difficulty_sum / file.pages.len() as f64;
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost: self.cost.document_cost(file.pages.len(), mean_difficulty),
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nougat::NougatParser;
    use crate::testutil::{doc_with_quality, parse_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;

    #[test]
    fn marker_has_highest_coverage() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 12);
        let mut marker_cov = 0.0;
        let mut nougat_cov = 0.0;
        let n = 10u64;
        for seed in 0..n {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            marker_cov += MarkerParser::new().parse_file(&file, &mut rng).unwrap().coverage();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            nougat_cov += NougatParser::new().parse_file(&file, &mut rng).unwrap().coverage();
        }
        assert!(marker_cov >= nougat_cov, "marker {marker_cov} vs nougat {nougat_cov}");
    }

    #[test]
    fn marker_is_the_most_expensive_parser() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 5);
        let marker = parse_doc(&MarkerParser::new(), &file);
        let nougat = parse_doc(&NougatParser::new(), &file);
        assert!(marker.cost.gpu_seconds > nougat.cost.gpu_seconds);
    }

    #[test]
    fn marker_output_is_markdown_flavoured() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&MarkerParser::new(), &file);
        assert!(out.text.contains('#') || out.text.contains('|'), "markdown artifacts expected");
    }

    #[test]
    fn marker_quality_is_reasonable_but_below_nougat_on_average() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Missing, 6);
        let gt = doc.ground_truth();
        let mut marker_bleu = 0.0;
        let mut nougat_bleu = 0.0;
        let n = 6u64;
        for seed in 0..n {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            marker_bleu += sentence_bleu(&MarkerParser::new().parse_file(&file, &mut rng).unwrap().text, &gt);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            nougat_bleu += sentence_bleu(
                &NougatParser::new()
                    .with_page_drop_probability(0.0)
                    .parse_file(&file, &mut rng)
                    .unwrap()
                    .text,
                &gt,
            );
        }
        assert!(marker_bleu > 0.0);
        assert!(nougat_bleu > marker_bleu, "nougat {nougat_bleu} should beat marker {marker_bleu}");
    }
}
