//! Nougat simulator: Vision-Transformer document recognition.
//!
//! Nougat decodes page images end-to-end into markdown-flavoured text with
//! LaTeX equations preserved, which makes it the highest-quality parser on
//! complex or degraded documents. It is GPU-bound (≈1–2 PDF/s per 4-GPU
//! node), pays a ≈15 s model-load cost per cold worker, and exhibits the
//! paper's most severe failure mode: entire pages silently dropped, plus the
//! occasional auto-regressive repetition loop.

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::RngCore;

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::failure;
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// Probability that Nougat silently drops a page.
pub const PAGE_DROP_PROBABILITY: f64 = 0.055;

/// Nougat ViT recognition simulator.
#[derive(Debug, Clone)]
pub struct NougatParser {
    cost: CostModel,
    page_drop_probability: f64,
}

impl Default for NougatParser {
    fn default() -> Self {
        Self::new()
    }
}

impl NougatParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        NougatParser {
            cost: CostModel::for_parser(ParserKind::Nougat),
            page_drop_probability: PAGE_DROP_PROBABILITY,
        }
    }

    /// Override the page-drop probability (used by ablation benches).
    pub fn with_page_drop_probability(mut self, probability: f64) -> Self {
        self.page_drop_probability = probability.clamp(0.0, 1.0);
        self
    }
}

impl Parser for NougatParser {
    fn kind(&self) -> ParserKind {
        ParserKind::Nougat
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        let keep = failure::page_drop_mask(file.pages.len(), self.page_drop_probability, rng);
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        for (page, keep_page) in file.pages.iter().zip(keep) {
            let glyphs = page.glyph_text.as_str();
            difficulty_sum += content_difficulty(glyphs);
            if !keep_page || glyphs.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            // Trained on scan-style augmentations, so quality degrades only
            // mildly with raster legibility; LaTeX is preserved.
            let legibility = page.image.legibility();
            let text = corrupt::ocr_noise(glyphs, 0.85 + 0.15 * legibility, rng);
            let text = failure::repetition_loop(&text, 0.02, rng);
            let text = failure::markdownify(&text, 2);
            pages_parsed += 1;
            out_pages.push(text);
        }
        let mean_difficulty = difficulty_sum / file.pages.len() as f64;
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost: self.cost.document_cost(file.pages.len(), mean_difficulty),
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pymupdf::PyMuPdfParser;
    use crate::testutil::{doc_with_quality, parse_doc, scanned_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;

    #[test]
    fn nougat_beats_extraction_on_documents_without_text_layers() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Missing, 4);
        let nougat = parse_doc(&NougatParser::new(), &file);
        let pymupdf = parse_doc(&PyMuPdfParser::new(), &file);
        let gt = doc.ground_truth();
        assert!(sentence_bleu(&nougat.text, &gt) > sentence_bleu(&pymupdf.text, &gt));
    }

    #[test]
    fn nougat_preserves_latex() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&NougatParser::new(), &file);
        if doc.ground_truth().contains("\\frac") {
            assert!(out.text.contains('\\'), "latex control sequences should survive");
        }
        assert!(out.cost.gpu_seconds > 0.0, "nougat consumes GPU time");
    }

    #[test]
    fn page_drops_reduce_coverage_below_one() {
        let parser = NougatParser::new().with_page_drop_probability(0.3);
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 10);
        let mut parsed = 0usize;
        let mut total = 0usize;
        for seed in 0..10u64 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = parser.parse_file(&file, &mut rng).unwrap();
            parsed += out.pages_parsed;
            total += out.pages_total;
        }
        let coverage = parsed as f64 / total as f64;
        assert!(coverage < 0.95 && coverage > 0.4, "coverage = {coverage}");
    }

    #[test]
    fn disabling_page_drops_gives_full_coverage() {
        let parser = NougatParser::new().with_page_drop_probability(0.0);
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 6);
        let out = parse_doc(&parser, &file);
        assert_eq!(out.pages_parsed, out.pages_total);
    }

    #[test]
    fn nougat_is_robust_to_scan_degradation() {
        let (doc_good, file_good) = scanned_doc(3, false);
        let (doc_bad, file_bad) = scanned_doc(3, true);
        let parser = NougatParser::new().with_page_drop_probability(0.0);
        let good = sentence_bleu(&parse_doc(&parser, &file_good).text, &doc_good.ground_truth());
        let bad = sentence_bleu(&parse_doc(&parser, &file_bad).text, &doc_bad.ground_truth());
        // Quality drops, but far less than proportionally to the degradation.
        assert!(bad > good * 0.6, "good={good} bad={bad}");
    }
}
