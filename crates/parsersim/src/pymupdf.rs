//! PyMuPDF simulator: fast, high-fidelity text extraction.
//!
//! PyMuPDF reads the embedded text layer directly. On clean born-digital
//! documents its output is nearly perfect prose; its characteristic failures
//! are LaTeX-to-plaintext mangling of equations and the occasional injected
//! whitespace. On documents without a usable text layer it returns (almost)
//! nothing — which is exactly the signal AdaParse's CLS I stage keys on.

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::RngCore;

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// PyMuPDF text extraction simulator.
#[derive(Debug, Clone)]
pub struct PyMuPdfParser {
    cost: CostModel,
}

impl Default for PyMuPdfParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PyMuPdfParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        PyMuPdfParser { cost: CostModel::for_parser(ParserKind::PyMuPdf) }
    }
}

impl Parser for PyMuPdfParser {
    fn kind(&self) -> ParserKind {
        ParserKind::PyMuPdf
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        for page in &file.pages {
            let embedded = page.embedded_text.as_str();
            difficulty_sum += content_difficulty(embedded);
            if embedded.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            // Equations stored as glyph runs come back as flattened plaintext.
            let text = corrupt::mangle_latex(embedded);
            // Mild whitespace injection from glyph-positioning heuristics.
            let text = corrupt::inject_whitespace(&text, 0.01, rng);
            pages_parsed += 1;
            out_pages.push(text);
        }
        let mean_difficulty = difficulty_sum / file.pages.len() as f64;
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost: self.cost.document_cost(file.pages.len(), mean_difficulty),
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{doc_with_quality, parse_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;

    #[test]
    fn clean_text_layer_extracts_nearly_verbatim() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&PyMuPdfParser::new(), &file);
        assert_eq!(out.pages_total, doc.page_count());
        assert_eq!(out.pages_parsed, doc.page_count());
        let bleu = sentence_bleu(&out.text, &doc.ground_truth());
        assert!(bleu > 0.6, "bleu = {bleu}");
        assert_eq!(out.cost.gpu_seconds, 0.0);
        assert!(out.cost.cpu_seconds > 0.0);
    }

    #[test]
    fn missing_text_layer_yields_empty_output() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Missing, 3);
        let out = parse_doc(&PyMuPdfParser::new(), &file);
        assert_eq!(out.pages_parsed, 0);
        assert_eq!(out.coverage(), 0.0);
        assert!(out.token_count() < 5);
    }

    #[test]
    fn scrambled_layer_extracts_garbage_but_fast() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Scrambled, 2);
        let out = parse_doc(&PyMuPdfParser::new(), &file);
        let bleu = sentence_bleu(&out.text, &doc.ground_truth());
        let (clean_doc, clean_file) = doc_with_quality(TextLayerQuality::Clean, 2);
        let clean_out = parse_doc(&PyMuPdfParser::new(), &clean_file);
        let clean_bleu = sentence_bleu(&clean_out.text, &clean_doc.ground_truth());
        assert!(bleu < clean_bleu, "scrambled {bleu} must score below clean {clean_bleu}");
    }

    #[test]
    fn output_never_contains_latex_control_sequences() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 2);
        let out = parse_doc(&PyMuPdfParser::new(), &file);
        assert!(!out.text.contains('\\'));
        assert!(!out.text.contains("$$"));
    }

    #[test]
    fn estimate_matches_actual_order_of_magnitude() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 4);
        let parser = PyMuPdfParser::new();
        let out = parse_doc(&parser, &file);
        let estimate = parser.estimate_cost(file.pages.len());
        assert!(out.cost.cpu_seconds < estimate.cpu_seconds * 3.0 + 0.1);
        assert!(estimate.cpu_seconds < out.cost.cpu_seconds * 3.0 + 0.1);
    }
}
