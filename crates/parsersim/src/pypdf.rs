//! pypdf simulator: pure-Python text extraction.
//!
//! pypdf reads the same embedded text layer as PyMuPDF but an order of
//! magnitude more slowly and with heavier artifacts: aggressive whitespace
//! injection, character-case corruption from damaged font encodings (the
//! reason its character accuracy rate collapses in the paper's Table 1), and
//! occasional per-page extraction failures.

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::{Rng, RngCore};

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// pypdf text extraction simulator.
#[derive(Debug, Clone)]
pub struct PypdfParser {
    cost: CostModel,
}

impl Default for PypdfParser {
    fn default() -> Self {
        Self::new()
    }
}

impl PypdfParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        PypdfParser { cost: CostModel::for_parser(ParserKind::Pypdf) }
    }
}

impl Parser for PypdfParser {
    fn kind(&self) -> ParserKind {
        ParserKind::Pypdf
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        for page in &file.pages {
            let embedded = page.embedded_text.as_str();
            difficulty_sum += content_difficulty(embedded);
            if embedded.trim().is_empty() || rng.gen_bool(0.04) {
                // No text layer, or a per-page extraction failure.
                out_pages.push(String::new());
                continue;
            }
            let text = corrupt::mangle_latex(embedded);
            let text = corrupt::inject_whitespace(&text, 0.20, rng);
            let text = corrupt::scramble_characters(&text, 0.08, rng);
            // Damaged encodings flip case pervasively, cratering CAR.
            let text = crate::failure::corrupt_case(&text, 0.25, rng);
            pages_parsed += 1;
            out_pages.push(text);
        }
        let mean_difficulty = difficulty_sum / file.pages.len() as f64;
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost: self.cost.document_cost(file.pages.len(), mean_difficulty),
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pymupdf::PyMuPdfParser;
    use crate::testutil::{doc_with_quality, parse_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;
    use textmetrics::levenshtein::char_accuracy_rate;

    #[test]
    fn pypdf_is_worse_and_slower_than_pymupdf() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Clean, 4);
        let pypdf = parse_doc(&PypdfParser::new(), &file);
        let pymupdf = parse_doc(&PyMuPdfParser::new(), &file);
        let gt = doc.ground_truth();
        assert!(sentence_bleu(&pypdf.text, &gt) < sentence_bleu(&pymupdf.text, &gt));
        assert!(pypdf.cost.cpu_seconds > pymupdf.cost.cpu_seconds * 5.0);
    }

    #[test]
    fn case_corruption_craters_car_but_not_bleu_as_much() {
        let (doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&PypdfParser::new(), &file);
        let gt = doc.ground_truth();
        let car = char_accuracy_rate(&out.text, &gt);
        let pymupdf_car = char_accuracy_rate(&parse_doc(&PyMuPdfParser::new(), &file).text, &gt);
        assert!(car < pymupdf_car, "pypdf CAR {car} should trail PyMuPDF {pymupdf_car}");
    }

    #[test]
    fn missing_layer_produces_nothing() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Missing, 2);
        let out = parse_doc(&PypdfParser::new(), &file);
        assert_eq!(out.pages_parsed, 0);
        assert!(out.token_count() < 5);
    }

    #[test]
    fn coverage_is_high_but_not_perfect() {
        // Per-page failures should show up over many pages.
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 12);
        let mut total_parsed = 0usize;
        let mut total_pages = 0usize;
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            use rand::SeedableRng;
            let out = PypdfParser::new().parse_file(&file, &mut rng).unwrap();
            total_parsed += out.pages_parsed;
            total_pages += out.pages_total;
        }
        let coverage = total_parsed as f64 / total_pages as f64;
        assert!(coverage > 0.85 && coverage < 1.0, "coverage = {coverage}");
    }
}
