//! Construction of parser instances by kind, and the shared [`ParserPool`].

use crate::grobid::GrobidParser;
use crate::marker::MarkerParser;
use crate::nougat::NougatParser;
use crate::pymupdf::PyMuPdfParser;
use crate::pypdf::PypdfParser;
use crate::tesseract::TesseractParser;
use crate::traits::{Parser, ParserKind};

/// Instantiate the parser simulator for a kind.
pub fn parser_for(kind: ParserKind) -> Box<dyn Parser> {
    match kind {
        ParserKind::PyMuPdf => Box::new(PyMuPdfParser::new()),
        ParserKind::Pypdf => Box::new(PypdfParser::new()),
        ParserKind::Tesseract => Box::new(TesseractParser::new()),
        ParserKind::Grobid => Box::new(GrobidParser::new()),
        ParserKind::Nougat => Box::new(NougatParser::new()),
        ParserKind::Marker => Box::new(MarkerParser::new()),
    }
}

/// Instantiate the full parser zoo, in the paper's table order.
pub fn all_parsers() -> Vec<Box<dyn Parser>> {
    ParserKind::ALL.iter().map(|&kind| parser_for(kind)).collect()
}

/// An immutable pool holding one instance of every parser.
///
/// Parsers are stateless simulators (all run-to-run variation flows through
/// the caller's RNG), so a single instance of each can be shared freely
/// across worker threads. The campaign pipeline constructs one pool per run
/// instead of re-boxing a parser per document, which is both faster and what
/// makes `&dyn Parser` borrows across a `rayon` scope possible.
pub struct ParserPool {
    // Indexed by `ParserKind::index()`.
    parsers: Vec<Box<dyn Parser>>,
}

impl std::fmt::Debug for ParserPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParserPool").field("parsers", &ParserKind::ALL.map(|k| k.name())).finish()
    }
}

impl ParserPool {
    /// Build the pool (constructs each parser exactly once).
    pub fn new() -> Self {
        ParserPool { parsers: all_parsers() }
    }

    /// Borrow the shared instance for a kind.
    pub fn get(&self, kind: ParserKind) -> &dyn Parser {
        self.parsers[kind.index()].as_ref()
    }

    /// All pooled parsers, in the paper's table order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Parser> {
        self.parsers.iter().map(|p| p.as_ref())
    }
}

impl Default for ParserPool {
    fn default() -> Self {
        ParserPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_kinds() {
        let parsers = all_parsers();
        assert_eq!(parsers.len(), ParserKind::ALL.len());
        for (parser, kind) in parsers.iter().zip(ParserKind::ALL) {
            assert_eq!(parser.kind(), kind);
            assert_eq!(parser.name(), kind.name());
            assert_eq!(parser.requires_gpu(), kind.requires_gpu());
        }
    }

    #[test]
    fn parsers_are_object_safe_and_sendable() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Parser>();
        let boxed: Box<dyn Parser> = parser_for(ParserKind::Nougat);
        assert_eq!(boxed.kind(), ParserKind::Nougat);
    }

    #[test]
    fn pool_shares_one_instance_per_kind_and_is_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParserPool>();
        let pool = ParserPool::new();
        for kind in ParserKind::ALL {
            assert_eq!(pool.get(kind).kind(), kind);
            // Two lookups hand back the same instance, not fresh boxes.
            assert!(std::ptr::eq(
                pool.get(kind) as *const dyn Parser as *const (),
                pool.get(kind) as *const dyn Parser as *const ()
            ));
        }
        assert_eq!(pool.iter().count(), ParserKind::ALL.len());
    }

    #[test]
    fn estimates_are_positive_for_nonempty_documents() {
        for parser in all_parsers() {
            let cost = parser.estimate_cost(10);
            assert!(cost.wall_seconds() > 0.0, "{} estimate must be positive", parser.name());
        }
    }
}
