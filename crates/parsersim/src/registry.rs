//! Construction of parser instances by kind.

use crate::grobid::GrobidParser;
use crate::marker::MarkerParser;
use crate::nougat::NougatParser;
use crate::pymupdf::PyMuPdfParser;
use crate::pypdf::PypdfParser;
use crate::tesseract::TesseractParser;
use crate::traits::{Parser, ParserKind};

/// Instantiate the parser simulator for a kind.
pub fn parser_for(kind: ParserKind) -> Box<dyn Parser> {
    match kind {
        ParserKind::PyMuPdf => Box::new(PyMuPdfParser::new()),
        ParserKind::Pypdf => Box::new(PypdfParser::new()),
        ParserKind::Tesseract => Box::new(TesseractParser::new()),
        ParserKind::Grobid => Box::new(GrobidParser::new()),
        ParserKind::Nougat => Box::new(NougatParser::new()),
        ParserKind::Marker => Box::new(MarkerParser::new()),
    }
}

/// Instantiate the full parser zoo, in the paper's table order.
pub fn all_parsers() -> Vec<Box<dyn Parser>> {
    ParserKind::ALL.iter().map(|&kind| parser_for(kind)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_kinds() {
        let parsers = all_parsers();
        assert_eq!(parsers.len(), ParserKind::ALL.len());
        for (parser, kind) in parsers.iter().zip(ParserKind::ALL) {
            assert_eq!(parser.kind(), kind);
            assert_eq!(parser.name(), kind.name());
            assert_eq!(parser.requires_gpu(), kind.requires_gpu());
        }
    }

    #[test]
    fn parsers_are_object_safe_and_sendable() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Parser>();
        let boxed: Box<dyn Parser> = parser_for(ParserKind::Nougat);
        assert_eq!(boxed.kind(), ParserKind::Nougat);
    }

    #[test]
    fn estimates_are_positive_for_nonempty_documents() {
        for parser in all_parsers() {
            let cost = parser.estimate_cost(10);
            assert!(cost.wall_seconds() > 0.0, "{} estimate must be positive", parser.name());
        }
    }
}
