//! Construction of parser instances by kind, the shared [`ParserPool`], and
//! the [`ParserFrontier`] — the deterministic cost/quality frontier that
//! k-parser cascade routing assigns documents over.

use crate::cost::CostModel;
use crate::grobid::GrobidParser;
use crate::marker::MarkerParser;
use crate::nougat::NougatParser;
use crate::pymupdf::PyMuPdfParser;
use crate::pypdf::PypdfParser;
use crate::tesseract::TesseractParser;
use crate::traits::{Parser, ParserKind};

/// Instantiate the parser simulator for a kind.
pub fn parser_for(kind: ParserKind) -> Box<dyn Parser> {
    match kind {
        ParserKind::PyMuPdf => Box::new(PyMuPdfParser::new()),
        ParserKind::Pypdf => Box::new(PypdfParser::new()),
        ParserKind::Tesseract => Box::new(TesseractParser::new()),
        ParserKind::Grobid => Box::new(GrobidParser::new()),
        ParserKind::Nougat => Box::new(NougatParser::new()),
        ParserKind::Marker => Box::new(MarkerParser::new()),
    }
}

/// Instantiate the full parser zoo, in the paper's table order.
pub fn all_parsers() -> Vec<Box<dyn Parser>> {
    ParserKind::ALL.iter().map(|&kind| parser_for(kind)).collect()
}

/// An immutable pool holding one instance of every parser.
///
/// Parsers are stateless simulators (all run-to-run variation flows through
/// the caller's RNG), so a single instance of each can be shared freely
/// across worker threads. The campaign pipeline constructs one pool per run
/// instead of re-boxing a parser per document, which is both faster and what
/// makes `&dyn Parser` borrows across a `rayon` scope possible.
pub struct ParserPool {
    // Indexed by `ParserKind::index()`.
    parsers: Vec<Box<dyn Parser>>,
}

impl std::fmt::Debug for ParserPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParserPool").field("parsers", &ParserKind::ALL.map(|k| k.name())).finish()
    }
}

impl ParserPool {
    /// Build the pool (constructs each parser exactly once).
    pub fn new() -> Self {
        ParserPool { parsers: all_parsers() }
    }

    /// Borrow the shared instance for a kind.
    pub fn get(&self, kind: ParserKind) -> &dyn Parser {
        self.parsers[kind.index()].as_ref()
    }

    /// All pooled parsers, in the paper's table order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Parser> {
        self.parsers.iter().map(|p| p.as_ref())
    }
}

impl Default for ParserPool {
    fn default() -> Self {
        ParserPool::new()
    }
}

/// Price of one GPU-second in CPU-second-equivalents, matching typical
/// accelerator-to-core pricing on allocation systems (an A100-hour is billed
/// at roughly eight core-hours). Used to express every parser's per-page
/// cost in one "dollar" unit so CPU OCR and GPU recognition sit on the same
/// cost axis.
pub const GPU_DOLLAR_RATIO: f64 = 8.0;

/// Mean content difficulty the frontier prices pages at — the same
/// calibration point [`crate::traits::Parser::estimate_cost`] uses.
const FRONTIER_DIFFICULTY: f64 = 0.3;

/// Expected per-page cost of a parser in dollars (CPU seconds plus
/// GPU-priced GPU seconds), at the frontier's calibration difficulty.
pub fn page_dollars(kind: ParserKind) -> f64 {
    let cost = CostModel::for_parser(kind).document_cost(1, FRONTIER_DIFFICULTY);
    cost.cpu_seconds + GPU_DOLLAR_RATIO * cost.gpu_seconds
}

/// Prior expected output quality of a parser in `[0, 1]`, calibrated to the
/// ordering of the paper's accuracy tables: recognition parsers (Marker,
/// Nougat) lead, classic OCR (Tesseract) beats extraction on average because
/// it reads the render rather than the (possibly corrupted) text layer,
/// extraction (PyMuPDF, pypdf) is mid-field, and GROBID trails because its
/// structure-oriented output drops equations, tables and whole sections.
pub fn quality_prior(kind: ParserKind) -> f64 {
    match kind {
        ParserKind::Marker => 0.92,
        ParserKind::Nougat => 0.90,
        ParserKind::Tesseract => 0.68,
        ParserKind::PyMuPdf => 0.62,
        ParserKind::Pypdf => 0.55,
        ParserKind::Grobid => 0.48,
    }
}

/// [`quality_prior`] conditioned on the document's
/// [`DocCategory`](docmodel::DocCategory) — the routing-side counterpart of
/// `scicorpus`' category-skewed generator presets. Scans collapse the
/// extraction parsers (they read a missing or OCR-mangled text layer) and
/// reward render readers; tables-heavy layouts reward layout-aware
/// recognition (Marker) and punish linear extraction; multilingual
/// documents punish Latin-script OCR (Tesseract) and GROBID's
/// structure-first output; clean born-digital documents close most of the
/// extraction-vs-recognition gap. Values stay in `[0, 1]`.
pub fn category_quality_prior(kind: ParserKind, category: docmodel::DocCategory) -> f64 {
    use docmodel::DocCategory;
    let delta = match category {
        DocCategory::Scanned => match kind {
            ParserKind::PyMuPdf | ParserKind::Pypdf => -0.35,
            ParserKind::Grobid => -0.20,
            ParserKind::Tesseract => 0.08,
            ParserKind::Marker | ParserKind::Nougat => 0.02,
        },
        DocCategory::TablesHeavy => match kind {
            ParserKind::Marker => 0.04,
            ParserKind::Nougat => 0.01,
            ParserKind::PyMuPdf | ParserKind::Pypdf => -0.12,
            ParserKind::Tesseract => -0.10,
            ParserKind::Grobid => -0.05,
        },
        DocCategory::Multilingual => match kind {
            ParserKind::Nougat => 0.02,
            ParserKind::Marker => 0.01,
            ParserKind::Tesseract => -0.15,
            ParserKind::Grobid => -0.10,
            ParserKind::PyMuPdf | ParserKind::Pypdf => -0.04,
        },
        DocCategory::CleanBornDigital => match kind {
            ParserKind::PyMuPdf => 0.18,
            ParserKind::Pypdf => 0.15,
            ParserKind::Grobid => 0.10,
            ParserKind::Tesseract => -0.02,
            ParserKind::Marker | ParserKind::Nougat => 0.0,
        },
    };
    (quality_prior(kind) + delta).clamp(0.0, 1.0)
}

/// One upgrade parser on the frontier: its expected quality gain over the
/// frontier's base parser and its cost per page, plus the slot weight the
/// budget greedy charges for assigning it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierEntry {
    /// The upgrade parser.
    pub parser: ParserKind,
    /// Prior quality gain over the frontier's base parser (> 0 for kept
    /// entries built by [`ParserFrontier::new`]).
    pub quality_gain: f64,
    /// Expected per-page cost in dollars ([`page_dollars`]).
    pub cost_per_page: f64,
    /// Slot cost of upgrading one document, normalized to the costliest kept
    /// upgrade: `cost_per_page / max_kept_cost_per_page`. Always in `(0, 1]`,
    /// and **exactly** `1.0` for the costliest entry (IEEE `x / x == 1.0`) —
    /// which is what makes the k=2 degenerate greedy reproduce the binary
    /// α-split bitwise.
    pub upgrade_weight: f64,
}

/// The cost/quality frontier cascade routing assigns documents over: a base
/// (cheap, default) parser plus the non-dominated upgrade parsers, ordered
/// by ascending cost per page.
///
/// Construction is fully deterministic: candidates are priced by
/// [`page_dollars`] and ranked by [`quality_prior`]; an upgrade is **pruned**
/// when its prior gain over the base is not positive, or when some other
/// candidate offers at least its quality gain at no greater cost (Pareto
/// dominance, ties broken toward the earlier [`ParserKind::index`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParserFrontier {
    base: ParserKind,
    entries: Vec<FrontierEntry>,
}

impl ParserFrontier {
    /// Build the frontier over `candidates` (the base itself is skipped if
    /// listed). Dominated and non-improving candidates are pruned; survivors
    /// are ordered by ascending cost and weight-normalized to the costliest.
    pub fn new(base: ParserKind, candidates: &[ParserKind]) -> Self {
        ParserFrontier::with_prior(base, candidates, quality_prior)
    }

    /// [`ParserFrontier::new`] conditioned on the document category: gains
    /// are measured under [`category_quality_prior`], so a scanned-corpus
    /// frontier keeps OCR upgrades a clean-corpus frontier would prune.
    pub fn for_category(
        base: ParserKind,
        candidates: &[ParserKind],
        category: docmodel::DocCategory,
    ) -> Self {
        ParserFrontier::with_prior(base, candidates, |k| category_quality_prior(k, category))
    }

    /// Frontier construction under an arbitrary quality prior (same
    /// pruning, ordering and weight normalization as [`ParserFrontier::new`]).
    pub fn with_prior(
        base: ParserKind,
        candidates: &[ParserKind],
        prior: impl Fn(ParserKind) -> f64,
    ) -> Self {
        let base_quality = prior(base);
        let mut raw: Vec<(ParserKind, f64, f64)> = candidates
            .iter()
            .copied()
            .filter(|&k| k != base)
            .map(|k| (k, prior(k) - base_quality, page_dollars(k)))
            .filter(|&(_, gain, _)| gain > 0.0)
            .collect();
        // Deterministic sweep order: ascending cost, then descending gain,
        // then the stable kind index.
        raw.sort_by(|a, b| a.2.total_cmp(&b.2).then(b.1.total_cmp(&a.1)).then(a.0.index().cmp(&b.0.index())));
        raw.dedup_by_key(|e| e.0);
        // Pareto sweep: with costs ascending, an entry survives only if its
        // gain strictly exceeds every cheaper survivor's.
        let mut kept: Vec<(ParserKind, f64, f64)> = Vec::with_capacity(raw.len());
        let mut best_gain = f64::NEG_INFINITY;
        for entry in raw {
            if entry.1 > best_gain {
                best_gain = entry.1;
                kept.push(entry);
            }
        }
        let max_cost = kept.last().map(|e| e.2).unwrap_or(1.0);
        let entries = kept
            .into_iter()
            .map(|(parser, quality_gain, cost_per_page)| FrontierEntry {
                parser,
                quality_gain,
                cost_per_page,
                upgrade_weight: cost_per_page / max_cost,
            })
            .collect();
        ParserFrontier { base, entries }
    }

    /// The full frontier over the whole parser zoo.
    pub fn full(base: ParserKind) -> Self {
        ParserFrontier::new(base, &ParserKind::ALL)
    }

    /// The degenerate two-parser frontier — the pinned binary case. The
    /// single upgrade carries weight exactly `1.0` and is **not** gain- or
    /// dominance-filtered, so a cascade over this frontier consumes the
    /// router's improvement scores unchanged and reproduces today's binary
    /// α-split masks bitwise.
    pub fn pair(base: ParserKind, upgrade: ParserKind) -> Self {
        assert_ne!(base, upgrade, "pair frontier needs two distinct parsers");
        let cost = page_dollars(upgrade);
        ParserFrontier {
            base,
            entries: vec![FrontierEntry {
                parser: upgrade,
                quality_gain: quality_prior(upgrade) - quality_prior(base),
                cost_per_page: cost,
                upgrade_weight: 1.0,
            }],
        }
    }

    /// The base (cheap, default) parser.
    pub fn base(&self) -> ParserKind {
        self.base
    }

    /// The kept upgrade parsers, ascending in cost per page.
    pub fn upgrades(&self) -> &[FrontierEntry] {
        &self.entries
    }

    /// Number of parsers on the frontier (base + upgrades); the "k" of
    /// k-parser routing.
    pub fn k(&self) -> usize {
        self.entries.len() + 1
    }

    /// Whether this is the degenerate binary frontier (k = 2).
    pub fn is_pair(&self) -> bool {
        self.entries.len() == 1
    }

    /// The costliest kept upgrade (the one with weight exactly 1.0), if any.
    pub fn costliest(&self) -> Option<&FrontierEntry> {
        self.entries.last()
    }

    /// Per-upgrade slot weights, in frontier (ascending-cost) order.
    pub fn weights(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.upgrade_weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_kinds() {
        let parsers = all_parsers();
        assert_eq!(parsers.len(), ParserKind::ALL.len());
        for (parser, kind) in parsers.iter().zip(ParserKind::ALL) {
            assert_eq!(parser.kind(), kind);
            assert_eq!(parser.name(), kind.name());
            assert_eq!(parser.requires_gpu(), kind.requires_gpu());
        }
    }

    #[test]
    fn parsers_are_object_safe_and_sendable() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Parser>();
        let boxed: Box<dyn Parser> = parser_for(ParserKind::Nougat);
        assert_eq!(boxed.kind(), ParserKind::Nougat);
    }

    #[test]
    fn pool_shares_one_instance_per_kind_and_is_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParserPool>();
        let pool = ParserPool::new();
        for kind in ParserKind::ALL {
            assert_eq!(pool.get(kind).kind(), kind);
            // Two lookups hand back the same instance, not fresh boxes.
            assert!(std::ptr::eq(
                pool.get(kind) as *const dyn Parser as *const (),
                pool.get(kind) as *const dyn Parser as *const ()
            ));
        }
        assert_eq!(pool.iter().count(), ParserKind::ALL.len());
    }

    #[test]
    fn category_priors_reorder_the_zoo_sensibly() {
        use docmodel::DocCategory;
        // Scans: render readers beat text-layer extraction decisively.
        assert!(
            category_quality_prior(ParserKind::Tesseract, DocCategory::Scanned)
                > category_quality_prior(ParserKind::PyMuPdf, DocCategory::Scanned)
        );
        // Clean born-digital: extraction nearly closes the gap it loses on
        // the global prior.
        let clean_gap = category_quality_prior(ParserKind::Marker, DocCategory::CleanBornDigital)
            - category_quality_prior(ParserKind::PyMuPdf, DocCategory::CleanBornDigital);
        assert!(clean_gap < quality_prior(ParserKind::Marker) - quality_prior(ParserKind::PyMuPdf));
        // Multilingual punishes Latin-script OCR below extraction's level.
        assert!(
            category_quality_prior(ParserKind::Tesseract, DocCategory::Multilingual)
                < quality_prior(ParserKind::Tesseract)
        );
        for category in DocCategory::ALL {
            for kind in ParserKind::ALL {
                assert!((0.0..=1.0).contains(&category_quality_prior(kind, category)));
            }
        }
    }

    #[test]
    fn category_frontier_conditions_the_pruning() {
        use docmodel::DocCategory;
        // On a clean corpus the OCR step's gain shrinks; on scans the
        // extraction base is so weak every render parser stays attractive.
        let scanned =
            ParserFrontier::for_category(ParserKind::PyMuPdf, &ParserKind::ALL, DocCategory::Scanned);
        let clean = ParserFrontier::for_category(
            ParserKind::PyMuPdf,
            &ParserKind::ALL,
            DocCategory::CleanBornDigital,
        );
        let gain_of =
            |f: &ParserFrontier, kind| f.upgrades().iter().find(|e| e.parser == kind).map(|e| e.quality_gain);
        let scanned_ocr = gain_of(&scanned, ParserKind::Tesseract).expect("OCR survives on scans");
        // None means pruned outright — also acceptable conditioning.
        if let Some(clean_ocr) = gain_of(&clean, ParserKind::Tesseract) {
            assert!(clean_ocr < scanned_ocr);
        }
        // The unconditioned frontier is with_prior under the global prior.
        assert_eq!(
            ParserFrontier::new(ParserKind::PyMuPdf, &ParserKind::ALL),
            ParserFrontier::with_prior(ParserKind::PyMuPdf, &ParserKind::ALL, quality_prior)
        );
    }

    #[test]
    fn full_frontier_is_graded_and_prunes_dominated_parsers() {
        let frontier = ParserFrontier::full(ParserKind::PyMuPdf);
        assert_eq!(frontier.base(), ParserKind::PyMuPdf);
        // pypdf and GROBID have non-positive prior gain over PyMuPDF; the
        // survivors are the graded OCR → ViT cascade.
        let kinds: Vec<ParserKind> = frontier.upgrades().iter().map(|e| e.parser).collect();
        assert_eq!(kinds, vec![ParserKind::Tesseract, ParserKind::Nougat, ParserKind::Marker]);
        assert_eq!(frontier.k(), 4);
        assert!(!frontier.is_pair());
        // Costs strictly ascend, gains strictly ascend (Pareto frontier).
        for pair in frontier.upgrades().windows(2) {
            assert!(pair[1].cost_per_page > pair[0].cost_per_page);
            assert!(pair[1].quality_gain > pair[0].quality_gain);
        }
        for e in frontier.upgrades() {
            assert!(e.quality_gain > 0.0);
            assert!(e.upgrade_weight > 0.0 && e.upgrade_weight <= 1.0);
        }
        // The costliest upgrade's weight is exactly 1.0, not approximately.
        assert_eq!(frontier.costliest().unwrap().upgrade_weight.to_bits(), 1.0f64.to_bits());
        assert_eq!(frontier.costliest().unwrap().parser, ParserKind::Marker);
    }

    #[test]
    fn frontier_construction_is_deterministic() {
        let a = ParserFrontier::full(ParserKind::PyMuPdf);
        let b = ParserFrontier::new(ParserKind::PyMuPdf, &ParserKind::ALL);
        assert_eq!(a, b);
        // Candidate order must not matter.
        let mut reversed = ParserKind::ALL.to_vec();
        reversed.reverse();
        assert_eq!(a, ParserFrontier::new(ParserKind::PyMuPdf, &reversed));
    }

    #[test]
    fn no_kept_upgrade_dominates_another() {
        let frontier = ParserFrontier::full(ParserKind::Pypdf);
        for (i, a) in frontier.upgrades().iter().enumerate() {
            for (j, b) in frontier.upgrades().iter().enumerate() {
                if i != j {
                    let dominates = a.quality_gain >= b.quality_gain && a.cost_per_page <= b.cost_per_page;
                    assert!(!dominates, "{:?} dominates {:?}", a.parser, b.parser);
                }
            }
        }
    }

    #[test]
    fn pair_frontier_is_the_exact_degenerate_case() {
        let pair = ParserFrontier::pair(ParserKind::PyMuPdf, ParserKind::Nougat);
        assert!(pair.is_pair());
        assert_eq!(pair.k(), 2);
        assert_eq!(pair.upgrades().len(), 1);
        let entry = &pair.upgrades()[0];
        assert_eq!(entry.parser, ParserKind::Nougat);
        assert_eq!(entry.upgrade_weight.to_bits(), 1.0f64.to_bits());
        assert_eq!(pair.weights(), vec![1.0]);
    }

    #[test]
    fn page_dollars_price_gpu_time_above_cpu_time() {
        // Recognition parsers cost strictly more per page than extraction.
        assert!(page_dollars(ParserKind::Nougat) > page_dollars(ParserKind::Tesseract) * 0.5);
        assert!(page_dollars(ParserKind::Marker) > page_dollars(ParserKind::Nougat));
        assert!(page_dollars(ParserKind::PyMuPdf) < page_dollars(ParserKind::Pypdf));
        for kind in ParserKind::ALL {
            assert!(page_dollars(kind) > 0.0);
            assert!((0.0..=1.0).contains(&quality_prior(kind)));
        }
    }

    #[test]
    fn estimates_are_positive_for_nonempty_documents() {
        for parser in all_parsers() {
            let cost = parser.estimate_cost(10);
            assert!(cost.wall_seconds() > 0.0, "{} estimate must be positive", parser.name());
        }
    }
}
