//! Tesseract simulator: LSTM-based optical character recognition.
//!
//! Tesseract recognizes text line-by-line from page images, so it does not
//! care whether a text layer exists — but its accuracy tracks raster
//! legibility, it cannot reconstruct LaTeX, and it is orders of magnitude
//! slower than extraction (CPU-bound, roughly seconds per page).

use docmodel::corrupt;
use docmodel::spdf::SpdfFile;
use rand::RngCore;

use crate::cost::{content_difficulty, CostModel, ResourceCost};
use crate::traits::{ParseError, ParseOutput, Parser, ParserKind};

/// Tesseract OCR simulator.
#[derive(Debug, Clone)]
pub struct TesseractParser {
    cost: CostModel,
}

impl Default for TesseractParser {
    fn default() -> Self {
        Self::new()
    }
}

impl TesseractParser {
    /// Create the simulator with the calibrated cost model.
    pub fn new() -> Self {
        TesseractParser { cost: CostModel::for_parser(ParserKind::Tesseract) }
    }
}

impl Parser for TesseractParser {
    fn kind(&self) -> ParserKind {
        ParserKind::Tesseract
    }

    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        if file.pages.is_empty() {
            return Err(ParseError::EmptyDocument);
        }
        let mut pages_parsed = 0usize;
        let mut out_pages = Vec::with_capacity(file.pages.len());
        let mut difficulty_sum = 0.0;
        let mut legibility_sum = 0.0;
        for page in &file.pages {
            let glyphs = page.glyph_text.as_str();
            difficulty_sum += content_difficulty(glyphs);
            let legibility = page.image.legibility();
            legibility_sum += legibility;
            if glyphs.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            // OCR flattens math into character soup before misreading it.
            let text = corrupt::mangle_latex(glyphs);
            // Classic OCR engines read character by character; recognition
            // error scales with how degraded the render is.
            let text = corrupt::ocr_noise(&text, 0.35 + 0.65 * legibility, rng);
            // Severely degraded pages sometimes come back empty.
            if text.trim().is_empty() {
                out_pages.push(String::new());
                continue;
            }
            pages_parsed += 1;
            out_pages.push(text);
        }
        let pages = file.pages.len() as f64;
        let mean_difficulty = difficulty_sum / pages;
        let mean_legibility = legibility_sum / pages;
        // Degraded scans cost more OCR passes (binarization retries etc.).
        let cost = self
            .cost
            .document_cost(file.pages.len(), mean_difficulty)
            .scaled(1.0 + 0.5 * (1.0 - mean_legibility));
        Ok(ParseOutput {
            parser: self.kind(),
            text: out_pages.join("\u{c}"),
            pages_parsed,
            pages_total: file.pages.len(),
            cost,
        })
    }

    fn estimate_cost(&self, pages: usize) -> ResourceCost {
        self.cost.document_cost(pages, 0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pymupdf::PyMuPdfParser;
    use crate::testutil::{doc_with_quality, parse_doc, scanned_doc};
    use docmodel::textlayer::TextLayerQuality;
    use textmetrics::bleu::sentence_bleu;

    #[test]
    fn ocr_ignores_the_text_layer() {
        // Even with a missing text layer, OCR recovers most of the content.
        let (doc, file) = doc_with_quality(TextLayerQuality::Missing, 3);
        let out = parse_doc(&TesseractParser::new(), &file);
        assert!(out.pages_parsed > 0);
        let bleu = sentence_bleu(&out.text, &doc.ground_truth());
        let extraction = parse_doc(&PyMuPdfParser::new(), &file);
        let extraction_bleu = sentence_bleu(&extraction.text, &doc.ground_truth());
        assert!(bleu > extraction_bleu, "OCR {bleu} must beat extraction {extraction_bleu} on scans");
    }

    #[test]
    fn accuracy_tracks_image_legibility() {
        let (doc_good, file_good) = scanned_doc(3, false);
        let (doc_bad, file_bad) = scanned_doc(3, true);
        let good = parse_doc(&TesseractParser::new(), &file_good);
        let bad = parse_doc(&TesseractParser::new(), &file_bad);
        let bleu_good = sentence_bleu(&good.text, &doc_good.ground_truth());
        let bleu_bad = sentence_bleu(&bad.text, &doc_bad.ground_truth());
        assert!(bleu_good > bleu_bad, "legible {bleu_good} must beat degraded {bleu_bad}");
        // Degraded scans also cost more.
        assert!(bad.cost.cpu_seconds > good.cost.cpu_seconds * 0.9);
    }

    #[test]
    fn ocr_is_much_slower_than_extraction() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 5);
        let ocr = parse_doc(&TesseractParser::new(), &file);
        let extraction = parse_doc(&PyMuPdfParser::new(), &file);
        assert!(ocr.cost.cpu_seconds > extraction.cost.cpu_seconds * 20.0);
        assert_eq!(ocr.cost.gpu_seconds, 0.0);
    }

    #[test]
    fn no_latex_in_ocr_output() {
        let (_doc, file) = doc_with_quality(TextLayerQuality::Clean, 3);
        let out = parse_doc(&TesseractParser::new(), &file);
        assert!(!out.text.contains("\\frac"));
        assert!(!out.text.contains("$$"));
    }
}
