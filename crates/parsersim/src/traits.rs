//! The [`Parser`] trait and its supporting types.

use docmodel::spdf::{SpdfError, SpdfFile};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::cost::ResourceCost;

/// Identity of a concrete parser implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ParserKind {
    /// MuPDF-based text extraction (the fast default).
    PyMuPdf,
    /// Pure-Python `pypdf` text extraction.
    Pypdf,
    /// Tesseract LSTM OCR.
    Tesseract,
    /// GROBID structured extraction.
    Grobid,
    /// Nougat Vision-Transformer recognition.
    Nougat,
    /// Marker layout-detection + texify recognition.
    Marker,
}

impl ParserKind {
    /// All parser kinds, in the order the paper's tables list them.
    pub const ALL: [ParserKind; 6] = [
        ParserKind::Marker,
        ParserKind::Nougat,
        ParserKind::PyMuPdf,
        ParserKind::Pypdf,
        ParserKind::Grobid,
        ParserKind::Tesseract,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ParserKind::PyMuPdf => "PyMuPDF",
            ParserKind::Pypdf => "pypdf",
            ParserKind::Tesseract => "Tesseract",
            ParserKind::Grobid => "GROBID",
            ParserKind::Nougat => "Nougat",
            ParserKind::Marker => "Marker",
        }
    }

    /// Parse a kind from its display name (case-insensitive).
    pub fn from_name(name: &str) -> Option<ParserKind> {
        ParserKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Whether this parser needs a GPU to run at a useful speed.
    pub fn requires_gpu(&self) -> bool {
        matches!(self, ParserKind::Nougat | ParserKind::Marker)
    }

    /// Whether this parser only reads the embedded text layer (as opposed to
    /// recognizing text from page images).
    pub fn is_extraction(&self) -> bool {
        matches!(self, ParserKind::PyMuPdf | ParserKind::Pypdf)
    }

    /// Dense index (stable across runs) used for model output heads.
    pub fn index(&self) -> usize {
        ParserKind::ALL.iter().position(|k| k == self).unwrap_or(0)
    }
}

impl std::fmt::Display for ParserKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced when a parser cannot handle its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The SPDF container itself was malformed.
    Container(SpdfError),
    /// The document has no content this parser can operate on (e.g. an
    /// extraction parser on a document without a text layer is *not* an
    /// error — it returns empty text — but a zero-page document is).
    EmptyDocument,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Container(e) => write!(f, "malformed container: {e}"),
            ParseError::EmptyDocument => write!(f, "document has no pages"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Container(e) => Some(e),
            ParseError::EmptyDocument => None,
        }
    }
}

impl From<SpdfError> for ParseError {
    fn from(value: SpdfError) -> Self {
        ParseError::Container(value)
    }
}

/// The result of parsing one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParseOutput {
    /// Which parser produced the output.
    pub parser: ParserKind,
    /// Extracted/recognized text, pages separated by form feeds.
    pub text: String,
    /// Number of pages for which output was produced.
    pub pages_parsed: usize,
    /// Number of pages in the document.
    pub pages_total: usize,
    /// Resources consumed by this parse.
    pub cost: ResourceCost,
}

impl ParseOutput {
    /// Page coverage in `[0, 1]` (the paper's "coverage" column).
    pub fn coverage(&self) -> f64 {
        if self.pages_total == 0 {
            0.0
        } else {
            (self.pages_parsed as f64 / self.pages_total as f64).clamp(0.0, 1.0)
        }
    }

    /// Number of word tokens in the output text.
    pub fn token_count(&self) -> usize {
        textmetrics::tokenize::count_words(&self.text)
    }
}

/// A PDF parser simulator.
///
/// Implementations are deterministic given the input bytes and the caller's
/// RNG, which models the run-to-run variation of real OCR/ViT inference.
pub trait Parser: Send + Sync {
    /// Which parser this is.
    fn kind(&self) -> ParserKind;

    /// Display name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Whether this parser needs a GPU.
    fn requires_gpu(&self) -> bool {
        self.kind().requires_gpu()
    }

    /// Parse an already-decoded SPDF file.
    fn parse_file(&self, file: &SpdfFile, rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError>;

    /// Parse raw SPDF bytes (decodes the container first).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError::Container`] when the bytes are not valid SPDF and
    /// [`ParseError::EmptyDocument`] for zero-page documents.
    fn parse_bytes(&self, bytes: &[u8], rng: &mut dyn RngCore) -> Result<ParseOutput, ParseError> {
        let file = SpdfFile::parse(bytes)?;
        self.parse_file(&file, rng)
    }

    /// Expected resource cost of parsing a document with the given page count
    /// without actually parsing it (used by the scheduler).
    fn estimate_cost(&self, pages: usize) -> ResourceCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in ParserKind::ALL {
            assert_eq!(ParserKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ParserKind::from_name("nougat"), Some(ParserKind::Nougat));
        assert_eq!(ParserKind::from_name("unknown"), None);
    }

    #[test]
    fn gpu_and_extraction_flags() {
        assert!(ParserKind::Nougat.requires_gpu());
        assert!(ParserKind::Marker.requires_gpu());
        assert!(!ParserKind::PyMuPdf.requires_gpu());
        assert!(ParserKind::PyMuPdf.is_extraction());
        assert!(ParserKind::Pypdf.is_extraction());
        assert!(!ParserKind::Tesseract.is_extraction());
    }

    #[test]
    fn indices_are_dense() {
        let mut idx: Vec<usize> = ParserKind::ALL.iter().map(|k| k.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn coverage_and_token_count() {
        let out = ParseOutput {
            parser: ParserKind::PyMuPdf,
            text: "three word output".to_string(),
            pages_parsed: 3,
            pages_total: 4,
            cost: ResourceCost::default(),
        };
        assert!((out.coverage() - 0.75).abs() < 1e-12);
        assert_eq!(out.token_count(), 3);
        let empty = ParseOutput { pages_total: 0, pages_parsed: 0, ..out };
        assert_eq!(empty.coverage(), 0.0);
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::EmptyDocument;
        assert!(!e.to_string().is_empty());
        let c: ParseError = docmodel::spdf::SpdfError::BadHeader.into();
        assert!(c.to_string().contains("malformed container"));
    }
}
