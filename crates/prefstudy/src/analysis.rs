//! Analysis of the collected study: the §7.1 statistics.

use parsersim::evaluate::DocumentEvaluation;
use parsersim::ParserKind;
use serde::{Deserialize, Serialize};
use textmetrics::stats::{correlation_p_value, pearson};
use textmetrics::winrate::{PreferenceOutcome, WinRateTable};

use crate::study::PreferenceStudy;

/// Summary statistics of a preference study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyAnalysis {
    /// Normalized win rate per parser, `(name, rate)`.
    pub win_rates: Vec<(String, f64)>,
    /// Fraction of judgements that were decisive (paper: 91.3 %).
    pub decisiveness: f64,
    /// Agreement rate among repeated pairings (paper: 82.2 %).
    pub consensus: f64,
    /// Pearson correlation between per-parser mean BLEU and win rate
    /// (paper: ρ ≈ 0.47).
    pub bleu_winrate_correlation: f64,
    /// Two-sided p-value for the correlation.
    pub correlation_p_value: f64,
    /// Number of judgements analysed.
    pub n_preferences: usize,
}

impl StudyAnalysis {
    /// Analyse a study against the parser evaluations it was collected from.
    pub fn compute(study: &PreferenceStudy, evaluations: &[DocumentEvaluation]) -> StudyAnalysis {
        let mut table = WinRateTable::new();
        for record in study.records() {
            table.record(record.first.name(), record.second.name(), record.outcome);
        }
        let win_rates: Vec<(String, f64)> =
            ParserKind::ALL.iter().map(|k| (k.name().to_string(), table.win_rate(k.name()))).collect();

        // Consensus: among pairings judged more than once, how often do the
        // decisive judgements agree on the winner?
        let mut by_pairing: std::collections::HashMap<usize, Vec<Option<ParserKind>>> =
            std::collections::HashMap::new();
        for record in study.records() {
            if record.outcome != PreferenceOutcome::Neither {
                by_pairing.entry(record.pairing_id).or_default().push(record.preferred());
            }
        }
        let mut agreements = 0usize;
        let mut comparisons = 0usize;
        for judgements in by_pairing.values() {
            if judgements.len() < 2 {
                continue;
            }
            for pair in judgements.windows(2) {
                comparisons += 1;
                if pair[0] == pair[1] {
                    agreements += 1;
                }
            }
        }
        let consensus = if comparisons == 0 { 0.0 } else { agreements as f64 / comparisons as f64 };

        // Correlation between the per-parser mean BLEU (over the evaluated
        // corpus) and the per-parser win rate.
        let mean_bleus: Vec<f64> = ParserKind::ALL
            .iter()
            .map(|k| {
                let scores: Vec<f64> =
                    evaluations.iter().filter_map(|e| e.for_parser(*k).map(|p| p.report.bleu)).collect();
                if scores.is_empty() {
                    0.0
                } else {
                    scores.iter().sum::<f64>() / scores.len() as f64
                }
            })
            .collect();
        let rates: Vec<f64> = win_rates.iter().map(|(_, r)| *r).collect();
        let correlation = pearson(&mean_bleus, &rates);
        let p_value = correlation_p_value(correlation, study.records().len().max(3));

        StudyAnalysis {
            win_rates,
            decisiveness: table.decisiveness(),
            consensus,
            bleu_winrate_correlation: correlation,
            correlation_p_value: p_value,
            n_preferences: study.len(),
        }
    }

    /// Win rate of one parser (0.0 if unknown).
    pub fn win_rate(&self, kind: ParserKind) -> f64 {
        self.win_rates.iter().find(|(name, _)| name == kind.name()).map(|(_, r)| *r).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyConfig;
    use parsersim::evaluate::evaluate_corpus;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn fixture() -> (PreferenceStudy, Vec<DocumentEvaluation>) {
        let docs = DocumentGenerator::new(GeneratorConfig {
            n_documents: 16,
            seed: 91,
            min_pages: 1,
            max_pages: 2,
            scanned_fraction: 0.25,
            ..Default::default()
        })
        .generate_many(16);
        let evaluations = evaluate_corpus(&docs, 17);
        let study = PreferenceStudy::collect(
            &evaluations,
            &StudyConfig { target_preferences: 600, repeat_fraction: 0.4, ..Default::default() },
        );
        (study, evaluations)
    }

    #[test]
    fn headline_statistics_match_the_papers_shape() {
        let (study, evaluations) = fixture();
        let analysis = StudyAnalysis::compute(&study, &evaluations);
        // Users express a preference most of the time (paper: 91.3 %).
        assert!(analysis.decisiveness > 0.7, "decisiveness = {}", analysis.decisiveness);
        // Repeated pairings mostly agree (paper: 82.2 %).
        assert!(analysis.consensus > 0.6, "consensus = {}", analysis.consensus);
        // BLEU correlates positively with win rate but is not fully predictive.
        assert!(
            analysis.bleu_winrate_correlation > 0.1,
            "correlation = {}",
            analysis.bleu_winrate_correlation
        );
        assert!(analysis.bleu_winrate_correlation < 0.999);
        assert_eq!(analysis.n_preferences, 600);
        assert_eq!(analysis.win_rates.len(), ParserKind::ALL.len());
    }

    #[test]
    fn pypdf_has_the_lowest_win_rate_among_extraction_parsers() {
        let (study, evaluations) = fixture();
        let analysis = StudyAnalysis::compute(&study, &evaluations);
        // The paper reports pypdf winning only 2.1–2.4 % of its comparisons;
        // our simulation should at least rank it clearly below PyMuPDF.
        assert!(
            analysis.win_rate(ParserKind::Pypdf) < analysis.win_rate(ParserKind::PyMuPdf),
            "pypdf {} should trail PyMuPDF {}",
            analysis.win_rate(ParserKind::Pypdf),
            analysis.win_rate(ParserKind::PyMuPdf)
        );
    }

    #[test]
    fn win_rates_are_bounded() {
        let (study, evaluations) = fixture();
        let analysis = StudyAnalysis::compute(&study, &evaluations);
        for (name, rate) in &analysis.win_rates {
            assert!((0.0..=1.0).contains(rate), "{name} rate {rate}");
        }
        assert!((0.0..=1.0).contains(&analysis.correlation_p_value));
    }

    #[test]
    fn empty_study_analysis_is_safe() {
        let analysis = StudyAnalysis::compute(&PreferenceStudy::collect(&[], &StudyConfig::default()), &[]);
        assert_eq!(analysis.n_preferences, 0);
        assert_eq!(analysis.decisiveness, 0.0);
        assert_eq!(analysis.consensus, 0.0);
    }
}
