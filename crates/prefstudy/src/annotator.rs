//! Simulated annotators.

use docmodel::metadata::Domain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use textmetrics::winrate::PreferenceOutcome;

/// One simulated scientist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotator {
    /// Annotator identifier.
    pub id: usize,
    /// Home discipline (annotators are pickier inside their own domain).
    pub domain: Domain,
    /// How strongly markdown artifacts (`#`, `|`) bother this annotator.
    pub markdown_aversion: f64,
    /// How strongly whitespace injection bothers this annotator.
    pub whitespace_aversion: f64,
    /// Standard deviation of the annotator's judgement noise.
    pub noise: f64,
    /// Minimum perceived-quality gap below which the annotator says "neither".
    pub indifference_threshold: f64,
}

impl Annotator {
    /// Perceived quality of a parser output given its BLEU against ground
    /// truth. This models the paper's observation that BLEU is correlated
    /// with, but far from fully predictive of, human preference.
    pub fn perceived_quality(&self, text: &str, bleu: f64, rng: &mut StdRng) -> f64 {
        let chars = text.chars().count().max(1) as f64;
        let markdown_density = text.chars().filter(|&c| c == '#' || c == '|').count() as f64 / chars;
        let whitespace_density = text.matches("  ").count() as f64 / (chars / 50.0 + 1.0);
        let emptiness_penalty = if text.trim().is_empty() { 0.6 } else { 0.0 };
        bleu - self.markdown_aversion * markdown_density * 8.0
            - self.whitespace_aversion * whitespace_density.min(1.0) * 0.3
            - emptiness_penalty
            + rng.gen_range(-self.noise..=self.noise)
    }

    /// Compare two outputs of the same page; returns which the annotator
    /// prefers, or `Neither` when the perceived gap is below the threshold.
    pub fn judge(
        &self,
        first_text: &str,
        first_bleu: f64,
        second_text: &str,
        second_bleu: f64,
        rng: &mut StdRng,
    ) -> PreferenceOutcome {
        let a = self.perceived_quality(first_text, first_bleu, rng);
        let b = self.perceived_quality(second_text, second_bleu, rng);
        if (a - b).abs() < self.indifference_threshold {
            PreferenceOutcome::Neither
        } else if a > b {
            PreferenceOutcome::FirstWins
        } else {
            PreferenceOutcome::SecondWins
        }
    }
}

/// The pool of simulated scientists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotatorPool {
    annotators: Vec<Annotator>,
}

impl AnnotatorPool {
    /// Create a pool of `n` annotators spanning the eight domains.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let annotators = (0..n)
            .map(|id| Annotator {
                id,
                domain: Domain::ALL[id % Domain::ALL.len()],
                markdown_aversion: rng.gen_range(0.2..1.0),
                whitespace_aversion: rng.gen_range(0.2..1.0),
                noise: rng.gen_range(0.02..0.08),
                indifference_threshold: rng.gen_range(0.01..0.05),
            })
            .collect();
        AnnotatorPool { annotators }
    }

    /// Number of annotators (the paper engaged 23).
    pub fn len(&self) -> usize {
        self.annotators.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.annotators.is_empty()
    }

    /// All annotators.
    pub fn annotators(&self) -> &[Annotator] {
        &self.annotators
    }

    /// A specific annotator by index (wrapping).
    pub fn annotator(&self, index: usize) -> &Annotator {
        &self.annotators[index % self.annotators.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn annotator() -> Annotator {
        Annotator {
            id: 0,
            domain: Domain::Biology,
            markdown_aversion: 0.5,
            whitespace_aversion: 0.5,
            noise: 0.01,
            indifference_threshold: 0.02,
        }
    }

    #[test]
    fn higher_bleu_wins_when_texts_are_comparable() {
        let a = annotator();
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins = 0;
        for _ in 0..50 {
            if a.judge("clean faithful text", 0.8, "clean faithful text", 0.3, &mut rng)
                == PreferenceOutcome::FirstWins
            {
                wins += 1;
            }
        }
        assert!(wins > 45);
    }

    #[test]
    fn markdown_artifacts_cost_preference_despite_equal_bleu() {
        let a = annotator();
        let mut rng = StdRng::seed_from_u64(2);
        let plain = "the reaction rate depends on substrate concentration";
        let markdowned = "## the | reaction | rate # depends | on # substrate | concentration ##";
        let mut plain_wins = 0;
        for _ in 0..60 {
            if a.judge(plain, 0.5, markdowned, 0.5, &mut rng) == PreferenceOutcome::FirstWins {
                plain_wins += 1;
            }
        }
        assert!(plain_wins > 40, "plain_wins = {plain_wins}");
    }

    #[test]
    fn near_identical_outputs_yield_indifference() {
        let mut a = annotator();
        a.indifference_threshold = 0.2;
        a.noise = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(a.judge("same text", 0.5, "same text", 0.5, &mut rng), PreferenceOutcome::Neither);
    }

    #[test]
    fn empty_output_is_strongly_penalized() {
        let a = annotator();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(a.judge("", 0.5, "substantial text output", 0.4, &mut rng), PreferenceOutcome::SecondWins);
    }

    #[test]
    fn pool_spans_domains_and_is_deterministic() {
        let pool = AnnotatorPool::new(23, 9);
        assert_eq!(pool.len(), 23);
        assert!(!pool.is_empty());
        let domains: std::collections::HashSet<_> = pool.annotators().iter().map(|a| a.domain).collect();
        assert!(domains.len() >= 8);
        assert_eq!(pool, AnnotatorPool::new(23, 9));
        assert_eq!(pool.annotator(0).id, 0);
        assert_eq!(pool.annotator(23).id, 0, "indexing wraps");
    }
}
