//! Simulated human preference study (paper §6.3 / §7.1).
//!
//! The paper recruits 23 scientists who, shown a page image and two parser
//! outputs, pick the output they prefer (or "neither"), yielding 2 794
//! preferences over 642 pages. Those preferences ground two things: the
//! DPO post-training signal and the win-rate / accepted-token metrics of
//! Tables 1–3.
//!
//! Real annotators are unavailable here, so [`annotator`] models them: each
//! simulated scientist scores a parser output by a latent quality mixing BLEU
//! with format-taste terms (markdown dislike, whitespace dislike) plus
//! per-annotator noise, and abstains when the two outputs are too close to
//! call. The simulator is calibrated so the headline statistics of §7.1 —
//! high decisiveness, high inter-annotator consensus, and a BLEU↔win-rate
//! correlation that is significant but far from 1 — are reproduced.
//!
//! [`study`] organizes the pairing design and splits, and [`analysis`]
//! computes the §7.1 statistics.

pub mod analysis;
pub mod annotator;
pub mod study;

pub use analysis::StudyAnalysis;
pub use annotator::{Annotator, AnnotatorPool};
pub use study::{PreferenceRecord, PreferenceStudy, StudyConfig};
