//! The preference study: pairing design, collection, and splits.

use parsersim::evaluate::DocumentEvaluation;
use parsersim::ParserKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use textmetrics::winrate::PreferenceOutcome;

use crate::annotator::AnnotatorPool;

/// Configuration of the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of annotators (the paper engaged 23).
    pub annotators: usize,
    /// Number of preference judgements to collect (the paper collected 2 794).
    pub target_preferences: usize,
    /// Fraction of pairings shown to more than one annotator (for consensus
    /// measurement).
    pub repeat_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig { annotators: 23, target_preferences: 2794, repeat_fraction: 0.3, seed: 11 }
    }
}

/// One collected preference judgement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferenceRecord {
    /// Document the page came from.
    pub doc_id: u64,
    /// Annotator who judged the pair.
    pub annotator: usize,
    /// First parser shown.
    pub first: ParserKind,
    /// Second parser shown.
    pub second: ParserKind,
    /// Outcome.
    pub outcome: PreferenceOutcome,
    /// Identifier of the pairing (records sharing it were shown to multiple
    /// annotators).
    pub pairing_id: usize,
}

impl PreferenceRecord {
    /// The preferred parser, if the judgement was decisive.
    pub fn preferred(&self) -> Option<ParserKind> {
        match self.outcome {
            PreferenceOutcome::FirstWins => Some(self.first),
            PreferenceOutcome::SecondWins => Some(self.second),
            PreferenceOutcome::Neither => None,
        }
    }

    /// The rejected parser, if the judgement was decisive.
    pub fn rejected(&self) -> Option<ParserKind> {
        match self.outcome {
            PreferenceOutcome::FirstWins => Some(self.second),
            PreferenceOutcome::SecondWins => Some(self.first),
            PreferenceOutcome::Neither => None,
        }
    }
}

/// The collected study with train/validation/test splits over records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreferenceStudy {
    records: Vec<PreferenceRecord>,
    train_len: usize,
    validation_len: usize,
}

impl PreferenceStudy {
    /// Run the study over a set of evaluated documents.
    ///
    /// Non-adaptive pairing: document, parser pair, and annotator are drawn
    /// independently of previous outcomes (the paper does this deliberately
    /// to avoid feedback bias).
    pub fn collect(evaluations: &[DocumentEvaluation], config: &StudyConfig) -> PreferenceStudy {
        let mut records = Vec::with_capacity(config.target_preferences);
        if evaluations.is_empty() || config.target_preferences == 0 {
            return PreferenceStudy { records, train_len: 0, validation_len: 0 };
        }
        let pool = AnnotatorPool::new(config.annotators.max(1), config.seed ^ 0xA770);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut pairing_id = 0usize;
        while records.len() < config.target_preferences {
            let eval = &evaluations[rng.gen_range(0..evaluations.len())];
            let first = ParserKind::ALL[rng.gen_range(0..ParserKind::ALL.len())];
            let mut second = ParserKind::ALL[rng.gen_range(0..ParserKind::ALL.len())];
            while second == first {
                second = ParserKind::ALL[rng.gen_range(0..ParserKind::ALL.len())];
            }
            let repeats = if rng.gen_bool(config.repeat_fraction.clamp(0.0, 1.0)) { 2 } else { 1 };
            for _ in 0..repeats {
                if records.len() >= config.target_preferences {
                    break;
                }
                let annotator_index = rng.gen_range(0..pool.len());
                let annotator = pool.annotator(annotator_index);
                let first_eval = eval.for_parser(first).expect("parser present");
                let second_eval = eval.for_parser(second).expect("parser present");
                let first_page = first_eval.output.text.split('\u{c}').next().unwrap_or("");
                let second_page = second_eval.output.text.split('\u{c}').next().unwrap_or("");
                let outcome = annotator.judge(
                    first_page,
                    first_eval.report.bleu,
                    second_page,
                    second_eval.report.bleu,
                    &mut rng,
                );
                records.push(PreferenceRecord {
                    doc_id: eval.doc_id.0,
                    annotator: annotator_index,
                    first,
                    second,
                    outcome,
                    pairing_id,
                });
            }
            pairing_id += 1;
        }
        // The paper's split: most preferences go to the test subset.
        let train_len = (records.len() as f64 * 0.25).round() as usize;
        let validation_len = (records.len() as f64 * 0.08).round() as usize;
        PreferenceStudy { records, train_len, validation_len }
    }

    /// All records.
    pub fn records(&self) -> &[PreferenceRecord] {
        &self.records
    }

    /// Training records (used for DPO).
    pub fn train(&self) -> &[PreferenceRecord] {
        &self.records[..self.train_len.min(self.records.len())]
    }

    /// Validation records.
    pub fn validation(&self) -> &[PreferenceRecord] {
        let start = self.train_len.min(self.records.len());
        let end = (self.train_len + self.validation_len).min(self.records.len());
        &self.records[start..end]
    }

    /// Test records (the majority, used for win-rate estimation).
    pub fn test(&self) -> &[PreferenceRecord] {
        let start = (self.train_len + self.validation_len).min(self.records.len());
        &self.records[start..]
    }

    /// Number of collected judgements.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no judgements were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsersim::evaluate::evaluate_corpus;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn evaluations() -> Vec<DocumentEvaluation> {
        let docs = DocumentGenerator::new(GeneratorConfig {
            n_documents: 10,
            seed: 81,
            min_pages: 1,
            max_pages: 2,
            scanned_fraction: 0.3,
            ..Default::default()
        })
        .generate_many(10);
        evaluate_corpus(&docs, 13)
    }

    #[test]
    fn study_collects_the_requested_number_of_preferences() {
        let config = StudyConfig { target_preferences: 300, ..Default::default() };
        let study = PreferenceStudy::collect(&evaluations(), &config);
        assert_eq!(study.len(), 300);
        assert_eq!(study.train().len() + study.validation().len() + study.test().len(), 300);
        assert!(study.test().len() > study.train().len(), "most records go to test");
    }

    #[test]
    fn records_are_well_formed() {
        let config = StudyConfig { target_preferences: 150, ..Default::default() };
        let study = PreferenceStudy::collect(&evaluations(), &config);
        for record in study.records() {
            assert_ne!(record.first, record.second);
            match record.outcome {
                PreferenceOutcome::Neither => {
                    assert!(record.preferred().is_none());
                    assert!(record.rejected().is_none());
                }
                _ => {
                    let preferred = record.preferred().unwrap();
                    let rejected = record.rejected().unwrap();
                    assert_ne!(preferred, rejected);
                    assert!(preferred == record.first || preferred == record.second);
                }
            }
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let config = StudyConfig { target_preferences: 100, ..Default::default() };
        let evals = evaluations();
        assert_eq!(PreferenceStudy::collect(&evals, &config), PreferenceStudy::collect(&evals, &config));
    }

    #[test]
    fn empty_inputs_yield_empty_study() {
        let config = StudyConfig::default();
        let study = PreferenceStudy::collect(&[], &config);
        assert!(study.is_empty());
        let none = PreferenceStudy::collect(&evaluations(), &StudyConfig { target_preferences: 0, ..config });
        assert!(none.is_empty());
    }

    #[test]
    fn repeated_pairings_exist_for_consensus_measurement() {
        let config = StudyConfig { target_preferences: 400, repeat_fraction: 0.5, ..Default::default() };
        let study = PreferenceStudy::collect(&evaluations(), &config);
        let mut counts = std::collections::HashMap::new();
        for r in study.records() {
            *counts.entry(r.pairing_id).or_insert(0usize) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "some pairings must repeat");
    }
}
