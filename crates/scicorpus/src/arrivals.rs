//! Seeded arrival-trace generators for the serve layer.
//!
//! A resident ingest service is exercised by *when* documents show up, not
//! just by what they contain. This module turns an [`ArrivalConfig`] into a
//! deterministic, time-sorted arrival trace — one [`Arrival`] per document
//! index — under four load shapes:
//!
//! * [`ArrivalPattern::Steady`] — Poisson arrivals at the configured mean
//!   rate (exponential inter-arrival gaps),
//! * [`ArrivalPattern::Bursty`] — documents land in tight bursts separated
//!   by quiet gaps sized so the *mean* rate still matches the configured
//!   rate (the shape that separates an autoscaler from a fixed fleet),
//! * [`ArrivalPattern::Diurnal`] — a sinusoidal day/night cycle modulating
//!   the instantaneous rate,
//! * [`ArrivalPattern::AdversarialHerd`] — every document in a herd arrives
//!   at *exactly* the same timestamp (zero jitter), the worst case for
//!   fairness and starvation properties.
//!
//! Traces are pure functions of their config: same seed, same trace, bit
//! for bit. Timestamps are non-decreasing and the ties inside a herd keep
//! document-index order, so downstream event loops get one canonical global
//! order for free.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One document arrival: the `doc_index`-th document of some workload
/// becomes visible to the service at `at_seconds` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Index into the owning workload's document list.
    pub doc_index: usize,
    /// Simulated arrival time in seconds (non-negative, non-decreasing
    /// along the trace).
    pub at_seconds: f64,
}

/// The temporal shape of an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson arrivals: independent exponential gaps at the mean rate.
    Steady,
    /// Bursts of `burst_size` near-simultaneous documents, with quiet gaps
    /// stretched so the long-run mean rate still equals the configured
    /// rate. Intra-burst jitter is exponential at `100×` the mean rate.
    Bursty {
        /// Documents per burst (clamped to at least 1).
        burst_size: usize,
    },
    /// Sinusoidal rate modulation with the given period: the instantaneous
    /// rate swings between `0.1×` and `1.9×` the mean over one period.
    Diurnal {
        /// Seconds per full day/night cycle (must be positive).
        period_seconds: f64,
    },
    /// Herds of `herd_size` documents arriving at *identical* timestamps,
    /// herds spaced to preserve the mean rate. Zero jitter by design.
    AdversarialHerd {
        /// Documents per herd (clamped to at least 1).
        herd_size: usize,
    },
}

/// Configuration for [`generate_arrivals`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Number of documents (and therefore arrivals) in the trace.
    pub n_documents: usize,
    /// RNG seed; the trace is a pure function of the whole config.
    pub seed: u64,
    /// Long-run mean arrival rate in documents per second (must be
    /// positive).
    pub mean_rate_per_second: f64,
    /// Temporal shape of the trace.
    pub pattern: ArrivalPattern,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            n_documents: 64,
            seed: 17,
            mean_rate_per_second: 1.0,
            pattern: ArrivalPattern::Steady,
        }
    }
}

/// Draw one exponential gap with the given rate from `rng` via inverse
/// transform. `1.0 - u` keeps the argument of `ln` strictly positive.
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / rate
}

/// Generate the arrival trace described by `config`.
///
/// The result has exactly `config.n_documents` entries with `doc_index`
/// `0..n`, timestamps non-decreasing, and is bitwise-deterministic in the
/// config.
///
/// # Panics
///
/// Panics if `mean_rate_per_second` is not strictly positive, or if a
/// [`ArrivalPattern::Diurnal`] period is not strictly positive.
///
/// # Examples
///
/// ```
/// use scicorpus::{generate_arrivals, ArrivalConfig, ArrivalPattern};
///
/// let config = ArrivalConfig {
///     n_documents: 10,
///     pattern: ArrivalPattern::AdversarialHerd { herd_size: 5 },
///     ..Default::default()
/// };
/// let trace = generate_arrivals(&config);
/// assert_eq!(trace.len(), 10);
/// // The first herd arrives as one indivisible instant.
/// assert_eq!(trace[0].at_seconds, trace[4].at_seconds);
/// assert!(trace[4].at_seconds < trace[5].at_seconds);
/// ```
pub fn generate_arrivals(config: &ArrivalConfig) -> Vec<Arrival> {
    assert!(
        config.mean_rate_per_second > 0.0,
        "mean_rate_per_second must be positive, got {}",
        config.mean_rate_per_second
    );
    let rate = config.mean_rate_per_second;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = Vec::with_capacity(config.n_documents);
    let mut now = 0.0_f64;
    match config.pattern {
        ArrivalPattern::Steady => {
            for doc_index in 0..config.n_documents {
                now += exp_gap(&mut rng, rate);
                arrivals.push(Arrival { doc_index, at_seconds: now });
            }
        }
        ArrivalPattern::Bursty { burst_size } => {
            let burst = burst_size.max(1);
            for doc_index in 0..config.n_documents {
                if doc_index % burst == 0 {
                    // Quiet gap carrying the whole burst's rate budget, so
                    // the long-run mean stays at `rate`.
                    now += exp_gap(&mut rng, rate / burst as f64);
                } else {
                    now += exp_gap(&mut rng, rate * 100.0);
                }
                arrivals.push(Arrival { doc_index, at_seconds: now });
            }
        }
        ArrivalPattern::Diurnal { period_seconds } => {
            assert!(period_seconds > 0.0, "diurnal period must be positive, got {period_seconds}");
            for doc_index in 0..config.n_documents {
                // Thinning-free approximation: draw the next gap at the
                // instantaneous rate of the current clock. Adequate for a
                // simulator stress shape; still a pure function of the
                // config.
                let phase = (now / period_seconds) * std::f64::consts::TAU;
                let instantaneous = rate * (1.0 + 0.9 * phase.sin()).max(0.1);
                now += exp_gap(&mut rng, instantaneous);
                arrivals.push(Arrival { doc_index, at_seconds: now });
            }
        }
        ArrivalPattern::AdversarialHerd { herd_size } => {
            let herd = herd_size.max(1);
            for doc_index in 0..config.n_documents {
                if doc_index % herd == 0 {
                    now += exp_gap(&mut rng, rate / herd as f64);
                }
                // Everyone in the herd shares `now` exactly: ties are real.
                arrivals.push(Arrival { doc_index, at_seconds: now });
            }
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(pattern: ArrivalPattern) -> ArrivalConfig {
        ArrivalConfig { n_documents: 200, seed: 91, mean_rate_per_second: 2.0, pattern }
    }

    fn assert_well_formed(trace: &[Arrival], n: usize) {
        assert_eq!(trace.len(), n);
        for (i, arrival) in trace.iter().enumerate() {
            assert_eq!(arrival.doc_index, i);
            assert!(arrival.at_seconds >= 0.0);
            if i > 0 {
                assert!(
                    arrival.at_seconds >= trace[i - 1].at_seconds,
                    "timestamps must be non-decreasing at index {i}"
                );
            }
        }
    }

    #[test]
    fn every_pattern_yields_a_sorted_complete_trace() {
        for pattern in [
            ArrivalPattern::Steady,
            ArrivalPattern::Bursty { burst_size: 8 },
            ArrivalPattern::Diurnal { period_seconds: 40.0 },
            ArrivalPattern::AdversarialHerd { herd_size: 10 },
        ] {
            let trace = generate_arrivals(&config(pattern));
            assert_well_formed(&trace, 200);
        }
    }

    #[test]
    fn traces_are_bitwise_deterministic_in_the_seed() {
        for pattern in [
            ArrivalPattern::Steady,
            ArrivalPattern::Bursty { burst_size: 8 },
            ArrivalPattern::Diurnal { period_seconds: 40.0 },
            ArrivalPattern::AdversarialHerd { herd_size: 10 },
        ] {
            let a = generate_arrivals(&config(pattern));
            let b = generate_arrivals(&config(pattern));
            assert_eq!(a, b);
            let other_seed = generate_arrivals(&ArrivalConfig { seed: 92, ..config(pattern) });
            assert_ne!(a, other_seed);
        }
    }

    #[test]
    fn mean_rates_are_roughly_preserved_across_shapes() {
        // With 200 arrivals at rate 2/s the span should be ~100 s for every
        // shape; allow a generous band since these are random draws.
        for pattern in [
            ArrivalPattern::Steady,
            ArrivalPattern::Bursty { burst_size: 8 },
            ArrivalPattern::AdversarialHerd { herd_size: 10 },
        ] {
            let trace = generate_arrivals(&config(pattern));
            let span = trace.last().unwrap().at_seconds;
            assert!((50.0..200.0).contains(&span), "{pattern:?}: span {span} outside the plausible band");
        }
    }

    #[test]
    fn herds_share_exact_timestamps() {
        let trace = generate_arrivals(&config(ArrivalPattern::AdversarialHerd { herd_size: 10 }));
        for herd in trace.chunks(10) {
            let t = herd[0].at_seconds;
            assert!(herd.iter().all(|a| a.at_seconds == t), "herd must be simultaneous");
        }
        assert!(trace[0].at_seconds < trace[10].at_seconds);
    }

    #[test]
    fn bursts_cluster_tighter_than_their_gaps() {
        let trace = generate_arrivals(&config(ArrivalPattern::Bursty { burst_size: 8 }));
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 1..trace.len() {
            let gap = trace[i].at_seconds - trace[i - 1].at_seconds;
            if i % 8 == 0 {
                inter.push(gap);
            } else {
                intra.push(gap);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) * 10.0 < mean(&inter),
            "intra-burst gaps ({}) should be far tighter than inter-burst gaps ({})",
            mean(&intra),
            mean(&inter)
        );
    }

    #[test]
    #[should_panic(expected = "mean_rate_per_second must be positive")]
    fn zero_rate_panics() {
        generate_arrivals(&ArrivalConfig { mean_rate_per_second: 0.0, ..ArrivalConfig::default() });
    }
}
