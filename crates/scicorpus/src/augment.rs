//! Corpus augmentation pipelines (paper §6.2 / §7.2).
//!
//! Two regimes are evaluated in the paper beyond the unmodified test set:
//!
//! 1. **Simulated scans** (Table 2): a 15 % subset of documents has its image
//!    layer degraded with random rotation, contrast adjustment, Gaussian blur
//!    and compression. Text extraction is unaffected; recognition parsers
//!    suffer.
//! 2. **OCR-degraded text layers** (Table 3): a 15 % subset has its embedded
//!    text layer replaced with the output of a common OCR/structuring tool,
//!    harming extraction parsers while leaving images untouched.

use docmodel::document::Document;
use docmodel::textlayer::{TextLayer, TextLayerQuality};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration shared by the augmentation passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Fraction of documents to augment (the paper uses 0.15).
    pub fraction: f64,
    /// RNG seed for selecting and degrading documents.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig { fraction: 0.15, seed: 99 }
    }
}

/// Degrade the image layer of a random `fraction` of documents in place
/// (Table 2 regime). Returns the indices of augmented documents.
pub fn augment_image_layers(documents: &mut [Document], config: &AugmentConfig) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut touched = Vec::new();
    for (index, doc) in documents.iter_mut().enumerate() {
        if rng.gen_bool(config.fraction.clamp(0.0, 1.0)) {
            doc.image_layer.degrade_all(&mut rng);
            touched.push(index);
        }
    }
    touched
}

/// Replace the embedded text layer of a random `fraction` of documents with
/// simulated OCR output (Table 3 regime). Returns the indices of augmented
/// documents.
pub fn augment_text_layers(documents: &mut [Document], config: &AugmentConfig) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut touched = Vec::new();
    for (index, doc) in documents.iter_mut().enumerate() {
        if rng.gen_bool(config.fraction.clamp(0.0, 1.0)) {
            let gt = doc.ground_truth_pages();
            // The replacement layer mimics what "common tools" (Tesseract or
            // GROBID, per the paper) attach: OCR noise whose severity depends
            // on how legible the page images are.
            let error_rate = 0.08 + 0.5 * (1.0 - doc.image_layer.mean_legibility());
            doc.text_layer = TextLayer::from_ground_truth(
                &gt,
                TextLayerQuality::OcrGenerated { error_rate: error_rate.clamp(0.0, 0.9) },
                &mut rng,
            );
            touched.push(index);
        }
    }
    touched
}

/// Perturb metadata of a random `fraction` of documents: the producer string
/// is dropped and the year is zeroed, modelling the unreliable metadata the
/// paper warns about. Returns the indices of perturbed documents.
pub fn perturb_metadata(documents: &mut [Document], config: &AugmentConfig) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(2));
    let mut touched = Vec::new();
    for (index, doc) in documents.iter_mut().enumerate() {
        if rng.gen_bool(config.fraction.clamp(0.0, 1.0)) {
            doc.metadata.producer = docmodel::metadata::ProducerTool::Unknown;
            doc.metadata.year = 0;
            touched.push(index);
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DocumentGenerator, GeneratorConfig};

    fn corpus(n: usize) -> Vec<Document> {
        DocumentGenerator::new(GeneratorConfig {
            n_documents: n,
            seed: 21,
            min_pages: 1,
            max_pages: 3,
            ..Default::default()
        })
        .generate_many(n)
    }

    #[test]
    fn image_augmentation_touches_roughly_the_requested_fraction() {
        let mut docs = corpus(200);
        let config = AugmentConfig { fraction: 0.15, seed: 3 };
        let touched = augment_image_layers(&mut docs, &config);
        let fraction = touched.len() as f64 / docs.len() as f64;
        assert!((0.05..0.30).contains(&fraction), "fraction = {fraction}");
        for &i in &touched {
            assert!(docs[i].image_layer.scanned);
        }
    }

    #[test]
    fn image_augmentation_lowers_legibility_only_for_touched_docs() {
        let mut docs = corpus(60);
        let before: Vec<f64> = docs.iter().map(|d| d.image_layer.mean_legibility()).collect();
        let touched = augment_image_layers(&mut docs, &AugmentConfig { fraction: 0.4, seed: 5 });
        for (i, doc) in docs.iter().enumerate() {
            if touched.contains(&i) {
                assert!(doc.image_layer.mean_legibility() < before[i]);
            } else {
                assert!((doc.image_layer.mean_legibility() - before[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn text_augmentation_replaces_layer_with_ocr_quality() {
        let mut docs = corpus(80);
        let touched = augment_text_layers(&mut docs, &AugmentConfig { fraction: 0.5, seed: 7 });
        assert!(!touched.is_empty());
        for &i in &touched {
            assert!(matches!(docs[i].text_layer.quality, TextLayerQuality::OcrGenerated { .. }));
            // Ground truth is untouched by text-layer replacement.
            assert!(docs[i].word_count() > 0);
        }
    }

    #[test]
    fn zero_fraction_is_a_noop() {
        let mut docs = corpus(30);
        let original = docs.clone();
        let config = AugmentConfig { fraction: 0.0, seed: 1 };
        assert!(augment_image_layers(&mut docs, &config).is_empty());
        assert!(augment_text_layers(&mut docs, &config).is_empty());
        assert!(perturb_metadata(&mut docs, &config).is_empty());
        assert_eq!(docs, original);
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let mut a = corpus(50);
        let mut b = corpus(50);
        let config = AugmentConfig { fraction: 0.3, seed: 77 };
        let ta = augment_image_layers(&mut a, &config);
        let tb = augment_image_layers(&mut b, &config);
        assert_eq!(ta, tb);
        assert_eq!(a, b);
    }

    #[test]
    fn metadata_perturbation_wipes_producer_and_year() {
        let mut docs = corpus(40);
        let touched = perturb_metadata(&mut docs, &AugmentConfig { fraction: 0.5, seed: 11 });
        for &i in &touched {
            assert_eq!(docs[i].metadata.producer, docmodel::metadata::ProducerTool::Unknown);
            assert_eq!(docs[i].metadata.year, 0);
        }
    }
}
