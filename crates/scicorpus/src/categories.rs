//! Category-skewed corpus generation.
//!
//! The paper's corpus is not homogeneous: scans, table-dense layouts,
//! mixed-script documents and clean born-digital PDFs respond very
//! differently to the parser zoo, which is exactly the heterogeneity
//! k-parser cascade routing exploits. This module turns a
//! [`docmodel::DocCategory`] into a [`GeneratorConfig`] preset
//! ([`category_preset`]) and draws whole mixed corpora from a weighted
//! [`CategoryMix`] ([`generate_categorized`]): per-document categories are
//! sampled from the mix, each category generates from its own preset
//! stream, and document ids are reassigned corpus-sequentially. The result
//! is a pure function of `(base config, mix, n, seed)`.
//!
//! The matching per-category parser-quality priors live in
//! `parsersim::registry::category_quality_prior`, keyed by the same
//! [`DocCategory`] — corpus skew and routing priors stay in one taxonomy.

use docmodel::document::{DocId, Document};
use docmodel::metadata::DocCategory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::generator::{DocumentGenerator, GeneratorConfig};

/// A weighted mixture over document categories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryMix {
    /// `(category, weight)` pairs; weights must be non-negative with a
    /// positive sum and are normalized at sampling time.
    pub weights: Vec<(DocCategory, f64)>,
}

impl CategoryMix {
    /// Equal weight on every category.
    pub fn uniform() -> Self {
        CategoryMix { weights: DocCategory::ALL.iter().map(|&c| (c, 1.0)).collect() }
    }

    /// A corpus shaped like the paper's: mostly clean born-digital, a solid
    /// tables-heavy slice, and scanned/multilingual minorities.
    pub fn paper_default() -> Self {
        CategoryMix {
            weights: vec![
                (DocCategory::Scanned, 0.12),
                (DocCategory::TablesHeavy, 0.22),
                (DocCategory::Multilingual, 0.10),
                (DocCategory::CleanBornDigital, 0.56),
            ],
        }
    }

    /// Normalized cumulative weights in [`DocCategory::ALL`]-aligned order
    /// of `self.weights`.
    ///
    /// # Panics
    ///
    /// Panics when a weight is negative or the total is not positive.
    fn cumulative(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().map(|&(_, w)| w).sum();
        assert!(
            total > 0.0 && self.weights.iter().all(|&(_, w)| w >= 0.0),
            "category mix needs non-negative weights with a positive sum"
        );
        let mut acc = 0.0;
        self.weights
            .iter()
            .map(|&(_, w)| {
                acc += w / total;
                acc
            })
            .collect()
    }
}

/// The generator preset for one category: the base configuration with the
/// knobs that define the category skewed. Seeds are left untouched — the
/// caller derives per-category streams.
pub fn category_preset(base: &GeneratorConfig, category: DocCategory) -> GeneratorConfig {
    let mut config = base.clone();
    match category {
        DocCategory::Scanned => {
            config.scanned_fraction = 1.0;
            config.ocr_attached_fraction = 0.55;
        }
        DocCategory::TablesHeavy => {
            config.scanned_fraction = 0.02;
            config.table_probability = 0.85;
        }
        DocCategory::Multilingual => {
            // No script model in the generator; mixed-script extraction
            // loss is proxied by a high scrambled-layer rate.
            config.scanned_fraction = 0.08;
            config.scrambled_fraction = 0.30;
        }
        DocCategory::CleanBornDigital => {
            config.scanned_fraction = 0.0;
            config.scrambled_fraction = 0.0;
        }
    }
    config
}

/// A corpus drawn from a category mix: documents with corpus-sequential
/// ids, plus the category each document was drawn from (index-aligned).
#[derive(Debug, Clone, PartialEq)]
pub struct CategorizedCorpus {
    /// The generated documents, ids `0..n` in order.
    pub documents: Vec<Document>,
    /// `categories[i]` is the category `documents[i]` was drawn from.
    pub categories: Vec<DocCategory>,
}

impl CategorizedCorpus {
    /// Documents drawn from `category`.
    pub fn of_category(&self, category: DocCategory) -> Vec<&Document> {
        self.documents.iter().zip(&self.categories).filter(|&(_, &c)| c == category).map(|(d, _)| d).collect()
    }

    /// Per-category document counts in [`DocCategory::ALL`] order.
    pub fn counts(&self) -> Vec<(DocCategory, usize)> {
        DocCategory::ALL
            .iter()
            .map(|&cat| (cat, self.categories.iter().filter(|&&c| c == cat).count()))
            .collect()
    }
}

/// Generate `n` documents whose categories follow `mix`. Each category
/// draws from its own [`category_preset`] generator stream (seeded
/// `seed ^ category index`), the per-document category sequence is drawn
/// from `StdRng::seed_from_u64(seed)`, and ids are reassigned to the
/// corpus-sequential `0..n` — so the corpus is bitwise-deterministic and
/// independent of how the categories interleave.
pub fn generate_categorized(
    base: &GeneratorConfig,
    mix: &CategoryMix,
    n: usize,
    seed: u64,
) -> CategorizedCorpus {
    let cumulative = mix.cumulative();
    let mut generators: Vec<DocumentGenerator> = DocCategory::ALL
        .iter()
        .map(|&cat| {
            let preset = GeneratorConfig {
                seed: seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cat.index() as u64 + 1)),
                ..category_preset(base, cat)
            };
            DocumentGenerator::new(preset)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut documents = Vec::with_capacity(n);
    let mut categories = Vec::with_capacity(n);
    for i in 0..n {
        let u: f64 = rng.gen_range(0.0..1.0);
        let slot = cumulative.iter().position(|&c| u < c).unwrap_or(mix.weights.len() - 1);
        let category = mix.weights[slot].0;
        let mut doc = generators[category.index()].generate();
        doc.id = DocId(i as u64);
        documents.push(doc);
        categories.push(category);
    }
    CategorizedCorpus { documents, categories }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorized_generation_is_deterministic() {
        let base = GeneratorConfig { min_pages: 1, max_pages: 3, ..Default::default() };
        let mix = CategoryMix::paper_default();
        let a = generate_categorized(&base, &mix, 40, 17);
        let b = generate_categorized(&base, &mix, 40, 17);
        assert_eq!(a, b);
        let ids: Vec<u64> = a.documents.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn mix_weights_are_roughly_respected() {
        let base = GeneratorConfig { min_pages: 1, max_pages: 2, ..Default::default() };
        let mix = CategoryMix::paper_default();
        let corpus = generate_categorized(&base, &mix, 600, 23);
        let counts = corpus.counts();
        let frac = |cat: DocCategory| {
            counts.iter().find(|&&(c, _)| c == cat).map(|&(_, n)| n).unwrap_or(0) as f64 / 600.0
        };
        assert!((0.40..0.72).contains(&frac(DocCategory::CleanBornDigital)));
        assert!((0.05..0.20).contains(&frac(DocCategory::Scanned)));
        assert_eq!(counts.iter().map(|&(_, n)| n).sum::<usize>(), 600);
    }

    #[test]
    fn category_presets_skew_the_right_knobs() {
        let base = GeneratorConfig::default();
        assert_eq!(category_preset(&base, DocCategory::Scanned).scanned_fraction, 1.0);
        assert!(category_preset(&base, DocCategory::TablesHeavy).table_probability > base.table_probability);
        assert_eq!(category_preset(&base, DocCategory::CleanBornDigital).scanned_fraction, 0.0);
        // Unrelated knobs ride through from the base.
        let custom = GeneratorConfig { paragraphs_per_page: 9, ..Default::default() };
        assert_eq!(category_preset(&custom, DocCategory::Multilingual).paragraphs_per_page, 9);
    }

    #[test]
    fn scanned_category_documents_are_actually_scans() {
        let base = GeneratorConfig { min_pages: 1, max_pages: 2, ..Default::default() };
        let mix = CategoryMix { weights: vec![(DocCategory::Scanned, 1.0)] };
        let corpus = generate_categorized(&base, &mix, 25, 31);
        assert!(corpus.documents.iter().all(|d| d.image_layer.scanned));
        assert_eq!(corpus.of_category(DocCategory::Scanned).len(), 25);
    }
}
