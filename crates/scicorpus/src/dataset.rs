//! Corpus container, deterministic splits and difficulty ranking.

use docmodel::document::{DocId, Document};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::generator::{DocumentGenerator, GeneratorConfig};

/// Sizes of a train/validation/test split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitSizes {
    /// Number of training documents.
    pub train: usize,
    /// Number of validation documents.
    pub validation: usize,
    /// Number of test documents.
    pub test: usize,
}

impl SplitSizes {
    /// Total number of documents covered by the split.
    pub fn total(&self) -> usize {
        self.train + self.validation + self.test
    }

    /// Proportional split of `n` documents using the canonical 70/10/20 ratio.
    pub fn proportional(n: usize) -> SplitSizes {
        let train = (n as f64 * 0.7).floor() as usize;
        let validation = (n as f64 * 0.1).floor() as usize;
        let test = n.saturating_sub(train + validation);
        SplitSizes { train, validation, test }
    }
}

/// A generated corpus with split bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    documents: Vec<Document>,
    split: SplitSizes,
    /// Permutation applied before splitting (indices into `documents`).
    order: Vec<usize>,
}

impl Corpus {
    /// Generate a corpus from a configuration. The result (including the
    /// split permutation) is a pure function of the configuration.
    pub fn generate(config: &GeneratorConfig) -> Corpus {
        let mut generator = DocumentGenerator::new(config.clone());
        let documents = generator.generate_many(config.n_documents);
        Corpus::from_documents(documents, config.seed)
    }

    /// Wrap an existing document collection, shuffling with `seed` to define
    /// the split order.
    pub fn from_documents(documents: Vec<Document>, seed: u64) -> Corpus {
        let mut order: Vec<usize> = (0..documents.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        order.shuffle(&mut rng);
        let split = SplitSizes::proportional(documents.len());
        Corpus { documents, split, order }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All documents in generation order.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// Mutable access to all documents (for augmentation passes).
    pub fn documents_mut(&mut self) -> &mut [Document] {
        &mut self.documents
    }

    /// Look up a document by id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.documents.iter().find(|d| d.id == id)
    }

    /// Override the split sizes.
    ///
    /// # Panics
    ///
    /// Panics if the split covers more documents than the corpus holds.
    pub fn set_split(&mut self, split: SplitSizes) {
        assert!(
            split.total() <= self.documents.len(),
            "split covers {} documents but corpus has {}",
            split.total(),
            self.documents.len()
        );
        self.split = split;
    }

    /// Current split sizes.
    pub fn split(&self) -> SplitSizes {
        self.split
    }

    /// Training subset (in split order).
    pub fn train(&self) -> Vec<&Document> {
        self.slice(0, self.split.train)
    }

    /// Validation subset.
    pub fn validation(&self) -> Vec<&Document> {
        self.slice(self.split.train, self.split.validation)
    }

    /// Test subset.
    pub fn test(&self) -> Vec<&Document> {
        self.slice(self.split.train + self.split.validation, self.split.test)
    }

    fn slice(&self, start: usize, len: usize) -> Vec<&Document> {
        self.order.iter().skip(start).take(len).filter_map(|&i| self.documents.get(i)).collect()
    }

    /// Documents sorted by descending intrinsic difficulty, together with the
    /// difficulty values — the ranking used for Figure 3's x-axis.
    pub fn difficulty_ranking(&self) -> Vec<(&Document, f64)> {
        let mut ranked: Vec<(&Document, f64)> =
            self.documents.iter().map(|d| (d, d.intrinsic_difficulty())).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }

    /// Only the born-digital documents (the Table 1 population).
    pub fn born_digital(&self) -> Vec<&Document> {
        self.documents.iter().filter(|d| d.is_born_digital()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        Corpus::generate(&GeneratorConfig {
            n_documents: 40,
            seed: 17,
            min_pages: 1,
            max_pages: 3,
            ..Default::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let config =
            GeneratorConfig { n_documents: 10, seed: 4, min_pages: 1, max_pages: 2, ..Default::default() };
        assert_eq!(Corpus::generate(&config), Corpus::generate(&config));
    }

    #[test]
    fn splits_are_disjoint_and_cover_expected_sizes() {
        let corpus = small_corpus();
        let split = corpus.split();
        assert_eq!(split.total(), corpus.len());
        let train = corpus.train();
        let val = corpus.validation();
        let test = corpus.test();
        assert_eq!(train.len(), split.train);
        assert_eq!(val.len(), split.validation);
        assert_eq!(test.len(), split.test);
        let mut ids: Vec<u64> = train.iter().chain(val.iter()).chain(test.iter()).map(|d| d.id.0).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(before, ids.len(), "splits must be disjoint");
    }

    #[test]
    fn custom_split_sizes_are_respected() {
        let mut corpus = small_corpus();
        corpus.set_split(SplitSizes { train: 5, validation: 3, test: 10 });
        assert_eq!(corpus.train().len(), 5);
        assert_eq!(corpus.validation().len(), 3);
        assert_eq!(corpus.test().len(), 10);
    }

    #[test]
    #[should_panic(expected = "split covers")]
    fn oversized_split_panics() {
        let mut corpus = small_corpus();
        corpus.set_split(SplitSizes { train: 100, validation: 0, test: 0 });
    }

    #[test]
    fn difficulty_ranking_is_descending() {
        let corpus = small_corpus();
        let ranking = corpus.difficulty_ranking();
        assert_eq!(ranking.len(), corpus.len());
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn get_by_id_and_born_digital_filter() {
        let corpus = small_corpus();
        let first = &corpus.documents()[0];
        assert_eq!(corpus.get(first.id), Some(first));
        assert!(corpus.get(DocId(999_999)).is_none());
        for doc in corpus.born_digital() {
            assert!(doc.is_born_digital());
        }
    }

    #[test]
    fn proportional_split_adds_up() {
        for n in [0usize, 1, 7, 100, 1234] {
            let s = SplitSizes::proportional(n);
            assert_eq!(s.total(), n);
        }
    }

    #[test]
    fn empty_corpus_behaves() {
        let corpus = Corpus::from_documents(vec![], 1);
        assert!(corpus.is_empty());
        assert!(corpus.train().is_empty());
        assert!(corpus.difficulty_ranking().is_empty());
    }
}
