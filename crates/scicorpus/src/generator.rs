//! Document generation.
//!
//! [`DocumentGenerator`] draws documents whose metadata, structure and layer
//! quality follow the distributions the paper describes: most documents are
//! recent and born-digital with clean text layers, a minority are scans with
//! missing or OCR-attached layers, and equation/table/SMILES density is
//! conditioned on the scientific domain.

use docmodel::document::{DocId, Document, Page};
use docmodel::element::Element;
use docmodel::imagelayer::ImageLayer;
use docmodel::metadata::{DocMetadata, Domain, PdfFormat, ProducerTool, Publisher};
use docmodel::textlayer::{TextLayer, TextLayerQuality};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{latex, smiles, vocab};

/// Configuration of the corpus generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of documents to generate.
    pub n_documents: usize,
    /// RNG seed; the corpus is a pure function of the configuration.
    pub seed: u64,
    /// Minimum number of pages per document.
    pub min_pages: usize,
    /// Maximum number of pages per document (inclusive).
    pub max_pages: usize,
    /// Fraction of documents produced by a scanner (no native text layer).
    pub scanned_fraction: f64,
    /// Fraction of scanned documents that had OCR text attached afterwards.
    pub ocr_attached_fraction: f64,
    /// Fraction of born-digital documents with author-scrambled text layers.
    pub scrambled_fraction: f64,
    /// Earliest publication year.
    pub min_year: u16,
    /// Latest publication year.
    pub max_year: u16,
    /// Mean number of sentences per paragraph.
    pub sentences_per_paragraph: usize,
    /// Mean number of paragraphs per page.
    pub paragraphs_per_page: usize,
    /// Probability a page carries a table (the category presets skew this;
    /// the default reproduces the historical corpus bitwise).
    pub table_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            n_documents: 100,
            seed: 7,
            min_pages: 3,
            max_pages: 14,
            scanned_fraction: 0.12,
            ocr_attached_fraction: 0.6,
            scrambled_fraction: 0.03,
            min_year: 2000,
            max_year: 2024,
            sentences_per_paragraph: 4,
            paragraphs_per_page: 3,
            table_probability: 0.35,
        }
    }
}

/// Stateful generator producing documents one at a time.
#[derive(Debug)]
pub struct DocumentGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    next_id: u64,
}

impl DocumentGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        DocumentGenerator { config, rng, next_id: 0 }
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generate the next document.
    pub fn generate(&mut self) -> Document {
        let id = DocId(self.next_id);
        self.next_id += 1;

        let domain = Domain::ALL[self.rng.gen_range(0..Domain::ALL.len())];
        let subcategory = {
            let subs = domain.subcategories();
            subs[self.rng.gen_range(0..subs.len())].to_string()
        };
        let publisher = Publisher::ALL[self.rng.gen_range(0..Publisher::ALL.len())];
        let year = self.rng.gen_range(self.config.min_year..=self.config.max_year);

        let scanned = self.rng.gen_bool(self.config.scanned_fraction.clamp(0.0, 1.0));
        let producer = if scanned {
            if self.rng.gen_bool(self.config.ocr_attached_fraction.clamp(0.0, 1.0)) {
                ProducerTool::OcrAttached
            } else {
                ProducerTool::Scanner
            }
        } else {
            match self.rng.gen_range(0..10) {
                0..=5 => ProducerTool::PdfLatex,
                6..=7 => ProducerTool::XeLatex,
                8 => ProducerTool::Word,
                _ => ProducerTool::InDesign,
            }
        };
        // Older documents skew toward older format versions.
        let format = if year < 2008 {
            if self.rng.gen_bool(0.6) {
                PdfFormat::V1_4
            } else {
                PdfFormat::V1_5
            }
        } else if year < 2016 {
            if self.rng.gen_bool(0.5) {
                PdfFormat::V1_6
            } else {
                PdfFormat::V1_7
            }
        } else if self.rng.gen_bool(0.85) {
            PdfFormat::V1_7
        } else {
            PdfFormat::V2_0
        };

        let title = vocab::title(&mut self.rng, domain);
        let metadata = DocMetadata { title, publisher, domain, subcategory, year, producer, format };

        let n_pages =
            self.rng.gen_range(self.config.min_pages..=self.config.max_pages.max(self.config.min_pages));
        let pages: Vec<Page> = (0..n_pages).map(|i| self.generate_page(domain, i, n_pages)).collect();
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();

        let text_quality = self.draw_text_quality(producer);
        let text_layer = TextLayer::from_ground_truth(&gt, text_quality, &mut self.rng);
        let image_layer = if scanned {
            ImageLayer::scanned(n_pages, &mut self.rng)
        } else {
            ImageLayer::born_digital(n_pages)
        };

        Document::new(id, metadata, pages, text_layer, image_layer)
    }

    /// Generate `n` documents.
    pub fn generate_many(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.generate()).collect()
    }

    fn draw_text_quality(&mut self, producer: ProducerTool) -> TextLayerQuality {
        match producer {
            ProducerTool::Scanner => TextLayerQuality::Missing,
            ProducerTool::OcrAttached => {
                TextLayerQuality::OcrGenerated { error_rate: self.rng.gen_range(0.05..0.45) }
            }
            ProducerTool::PdfLatex | ProducerTool::XeLatex => {
                if self.rng.gen_bool(self.config.scrambled_fraction.clamp(0.0, 1.0)) {
                    TextLayerQuality::Scrambled
                } else if self.rng.gen_bool(0.35) {
                    TextLayerQuality::LatexMangled
                } else {
                    TextLayerQuality::Clean
                }
            }
            _ => {
                if self.rng.gen_bool(self.config.scrambled_fraction.clamp(0.0, 1.0)) {
                    TextLayerQuality::Scrambled
                } else {
                    TextLayerQuality::Clean
                }
            }
        }
    }

    fn generate_page(&mut self, domain: Domain, page_index: usize, n_pages: usize) -> Page {
        let mut elements = Vec::new();
        let rng = &mut self.rng;

        if page_index == 0 {
            elements.push(Element::heading(1, &vocab::title(rng, domain)));
            elements.push(Element::Paragraph {
                text: format!(
                    "Abstract. {}",
                    vocab::paragraph(rng, domain, self.config.sentences_per_paragraph)
                ),
            });
        } else {
            elements
                .push(Element::heading((1 + page_index.min(3)) as u8, &format!("Section {}", page_index)));
        }

        let n_paragraphs = self.config.paragraphs_per_page.max(1)
            + rng.gen_range(0..=self.config.paragraphs_per_page.max(1));
        for _ in 0..n_paragraphs {
            elements.push(Element::Paragraph {
                text: vocab::paragraph(rng, domain, self.config.sentences_per_paragraph.max(1)),
            });
            if rng.gen_bool(domain.equation_density()) {
                elements.push(Element::Equation { latex: latex::equation(rng), display: true });
            }
            if rng.gen_bool(domain.equation_density() * 0.4) {
                elements.push(Element::Equation { latex: latex::inline_fragment(rng), display: false });
            }
            if rng.gen_bool(domain.smiles_density()) {
                elements.push(Element::Smiles { code: smiles::random_smiles(rng) });
            }
        }

        if rng.gen_bool(self.config.table_probability.clamp(0.0, 1.0)) {
            let cols = rng.gen_range(2..5usize);
            let rows = rng.gen_range(2..6usize);
            let table_rows: Vec<Vec<String>> = (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| {
                            if rng.gen_bool(0.5) {
                                format!("{:.2}", rng.gen_range(0.0..100.0))
                            } else {
                                vocab::pick(rng, vocab::ACADEMIC_COMMON).to_string()
                            }
                        })
                        .collect()
                })
                .collect();
            elements.push(Element::Table { caption: vocab::sentence(rng, domain), rows: table_rows });
        }
        if rng.gen_bool(0.4) {
            elements.push(Element::Figure { caption: vocab::sentence(rng, domain) });
        }
        if rng.gen_bool(0.25) {
            for _ in 0..rng.gen_range(1..4usize) {
                elements.push(Element::ListItem { text: vocab::sentence(rng, domain) });
            }
        }

        // References on the last page.
        if page_index + 1 == n_pages {
            elements.push(Element::heading(1, "References"));
            for _ in 0..rng.gen_range(4..12usize) {
                let (key, text) = vocab::reference(rng, domain);
                elements.push(Element::Reference { key, text });
            }
        }

        Page::new(elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docmodel::element::ElementKind;

    #[test]
    fn generator_is_deterministic() {
        let mut a =
            DocumentGenerator::new(GeneratorConfig { n_documents: 3, seed: 11, ..Default::default() });
        let mut b =
            DocumentGenerator::new(GeneratorConfig { n_documents: 3, seed: 11, ..Default::default() });
        assert_eq!(a.generate(), b.generate());
        assert_eq!(a.generate(), b.generate());
    }

    #[test]
    fn different_seeds_give_different_documents() {
        let mut a = DocumentGenerator::new(GeneratorConfig { seed: 1, ..Default::default() });
        let mut b = DocumentGenerator::new(GeneratorConfig { seed: 2, ..Default::default() });
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn documents_have_expected_shape() {
        let config =
            GeneratorConfig { n_documents: 20, seed: 3, min_pages: 2, max_pages: 6, ..Default::default() };
        let mut generator = DocumentGenerator::new(config.clone());
        for _ in 0..20 {
            let doc = generator.generate();
            assert!(doc.page_count() >= config.min_pages && doc.page_count() <= config.max_pages);
            assert!(doc.word_count() > 30);
            assert_eq!(doc.text_layer.page_count(), doc.page_count());
            assert_eq!(doc.image_layer.page_count(), doc.page_count());
            assert!(doc.count_kind(ElementKind::Reference) >= 4);
            assert!(!doc.metadata.title.is_empty());
            assert!(doc.metadata.domain.subcategories().contains(&doc.metadata.subcategory.as_str()));
        }
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut generator = DocumentGenerator::new(GeneratorConfig { seed: 5, ..Default::default() });
        let docs = generator.generate_many(10);
        let ids: Vec<u64> = docs.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scanned_fraction_is_roughly_respected() {
        let config = GeneratorConfig {
            n_documents: 300,
            seed: 9,
            scanned_fraction: 0.5,
            min_pages: 1,
            max_pages: 3,
            ..Default::default()
        };
        let mut generator = DocumentGenerator::new(config);
        let docs = generator.generate_many(300);
        let scanned = docs.iter().filter(|d| d.image_layer.scanned).count();
        let fraction = scanned as f64 / docs.len() as f64;
        assert!((0.35..0.65).contains(&fraction), "scanned fraction = {fraction}");
        // Scanner-produced documents must have no usable text layer.
        for doc in &docs {
            if doc.metadata.producer == ProducerTool::Scanner {
                assert!(!doc.text_layer.has_text());
            }
        }
    }

    #[test]
    fn math_documents_have_more_equations_than_medicine() {
        let config =
            GeneratorConfig { n_documents: 200, seed: 13, min_pages: 2, max_pages: 4, ..Default::default() };
        let mut generator = DocumentGenerator::new(config);
        let docs = generator.generate_many(200);
        let avg = |domain: Domain| {
            let selected: Vec<_> = docs.iter().filter(|d| d.metadata.domain == domain).collect();
            if selected.is_empty() {
                return 0.0;
            }
            selected.iter().map(|d| d.count_kind(ElementKind::Equation) as f64).sum::<f64>()
                / selected.len() as f64
        };
        assert!(avg(Domain::Mathematics) > avg(Domain::Medicine));
    }
}
