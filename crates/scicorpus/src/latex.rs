//! Synthetic LaTeX equation generation.
//!
//! Equations are the single biggest driver of extraction difficulty in the
//! paper's failure analysis (LaTeX-to-plaintext conversion, Figure 1f), so
//! the generator produces equations with realistic structural variety:
//! fractions, sub/superscripts, Greek letters, sums/integrals and operators.

use rand::Rng;

const GREEK: &[&str] = &[
    "\\alpha",
    "\\beta",
    "\\gamma",
    "\\delta",
    "\\epsilon",
    "\\lambda",
    "\\mu",
    "\\sigma",
    "\\theta",
    "\\phi",
    "\\omega",
    "\\nabla",
    "\\partial",
];

const VARIABLES: &[&str] = &["x", "y", "z", "t", "u", "v", "n", "k", "p", "q", "E", "F", "H", "T"];

const OPERATORS: &[&str] = &["+", "-", "\\cdot", "\\times", "\\le", "\\ge", "=", "\\approx", "\\propto"];

const BIG_OPS: &[&str] =
    &["\\sum_{i=1}^{n}", "\\int_{0}^{T}", "\\prod_{j=1}^{m}", "\\max_{\\theta}", "\\min_{x}"];

fn atom<R: Rng + ?Sized>(rng: &mut R) -> String {
    match rng.gen_range(0..4) {
        0 => GREEK[rng.gen_range(0..GREEK.len())].to_string(),
        1 => VARIABLES[rng.gen_range(0..VARIABLES.len())].to_string(),
        2 => format!("{}_{{{}}}", VARIABLES[rng.gen_range(0..VARIABLES.len())], rng.gen_range(0..10)),
        _ => format!("{}^{{{}}}", VARIABLES[rng.gen_range(0..VARIABLES.len())], rng.gen_range(2..5)),
    }
}

fn term<R: Rng + ?Sized>(rng: &mut R, depth: usize) -> String {
    if depth == 0 || rng.gen_bool(0.5) {
        return atom(rng);
    }
    match rng.gen_range(0..3) {
        0 => format!("\\frac{{{}}}{{{}}}", term(rng, depth - 1), term(rng, depth - 1)),
        1 => format!("{} {}", BIG_OPS[rng.gen_range(0..BIG_OPS.len())], term(rng, depth - 1)),
        _ => format!("\\sqrt{{{}}}", term(rng, depth - 1)),
    }
}

/// Generate one LaTeX equation of bounded depth.
///
/// The result is a plausible display-math body, e.g.
/// `\frac{\partial u}{\partial t} = \alpha \cdot \nabla^{2}`.
pub fn equation<R: Rng + ?Sized>(rng: &mut R) -> String {
    let lhs = term(rng, 2);
    let op = OPERATORS[rng.gen_range(0..OPERATORS.len())];
    let n_rhs_terms = rng.gen_range(1..4);
    let rhs: Vec<String> = (0..n_rhs_terms).map(|_| term(rng, 2)).collect();
    format!("{lhs} {op} {}", rhs.join(" + "))
}

/// Generate a short inline math fragment (single term).
pub fn inline_fragment<R: Rng + ?Sized>(rng: &mut R) -> String {
    term(rng, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equations_contain_latex_markup() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_backslash = 0;
        for _ in 0..50 {
            let eq = equation(&mut rng);
            assert!(!eq.is_empty());
            if eq.contains('\\') {
                saw_backslash += 1;
            }
            // Braces must be balanced.
            let open = eq.matches('{').count();
            let close = eq.matches('}').count();
            assert_eq!(open, close, "unbalanced braces in {eq}");
        }
        assert!(saw_backslash > 30, "most equations should contain control sequences");
    }

    #[test]
    fn inline_fragments_are_short() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let frag = inline_fragment(&mut rng);
            assert!(frag.len() < 60);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(equation(&mut a), equation(&mut b));
    }
}
