//! Synthetic scientific corpus generation.
//!
//! The paper benchmarks parsers on 25 000 scientific PDFs drawn from six
//! publishers, eight domains and 67 sub-categories, with HTML-derived ground
//! truth, and stresses the corpus under two augmentation regimes (simulated
//! scans and OCR-degraded text layers). This crate generates the
//! reproduction's stand-in corpus:
//!
//! * [`vocab`] / [`latex`] / [`smiles`] — domain-conditioned building blocks,
//! * [`generator`] — turns a [`GeneratorConfig`] into [`docmodel::Document`]s
//!   whose structure, metadata and layer quality follow the distributions the
//!   paper describes,
//! * [`augment`] — the §7.2 augmentation pipelines (image-layer degradation,
//!   text-layer replacement),
//! * [`dataset`] — corpus container, deterministic train/validation/test
//!   splits and difficulty ranking.
//!
//! # Example
//!
//! ```
//! use scicorpus::{Corpus, GeneratorConfig};
//!
//! let corpus = Corpus::generate(&GeneratorConfig { n_documents: 8, seed: 1, ..Default::default() });
//! assert_eq!(corpus.len(), 8);
//! assert!(corpus.documents()[0].word_count() > 50);
//! ```

pub mod arrivals;
pub mod augment;
pub mod categories;
pub mod dataset;
pub mod generator;
pub mod latex;
pub mod smiles;
pub mod vocab;

pub use arrivals::{generate_arrivals, Arrival, ArrivalConfig, ArrivalPattern};
pub use augment::{augment_image_layers, augment_text_layers, AugmentConfig};
pub use categories::{category_preset, generate_categorized, CategorizedCorpus, CategoryMix};
pub use dataset::{Corpus, SplitSizes};
pub use generator::{DocumentGenerator, GeneratorConfig};
