//! Synthetic SMILES chemical identifiers.
//!
//! SMILES strings are the paper's example of content where a two-character
//! edit can silently destroy scientific meaning (Figure 1e "corrupted
//! SMILES"); the corpus sprinkles them into chemistry/biology documents so
//! that character-level failure modes have consequences the metrics can see.

use rand::Rng;

const FRAGMENTS: &[&str] = &[
    "C",
    "CC",
    "C(C)",
    "c1ccccc1",
    "C(=O)O",
    "N",
    "O",
    "Cl",
    "CCO",
    "C(=O)N",
    "S(=O)(=O)",
    "F",
    "C1CCCCC1",
    "n1ccccc1",
    "[Na+]",
    "[O-]",
];

/// Generate a plausible SMILES string of `n_fragments` fragments.
pub fn smiles<R: Rng + ?Sized>(rng: &mut R, n_fragments: usize) -> String {
    let n = n_fragments.clamp(1, 12);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())]);
    }
    out
}

/// Generate a SMILES string with random length between 2 and 8 fragments.
pub fn random_smiles<R: Rng + ?Sized>(rng: &mut R) -> String {
    let n = rng.gen_range(2..=8);
    smiles(rng, n)
}

/// Check structural well-formedness used by tests: parentheses and brackets
/// balanced, ring-closure digits paired (every digit appears an even number
/// of times).
pub fn is_plausible(code: &str) -> bool {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut digit_counts = [0usize; 10];
    for c in code.chars() {
        match c {
            '(' => paren += 1,
            ')' => paren -= 1,
            '[' => bracket += 1,
            ']' => bracket -= 1,
            d if d.is_ascii_digit() => digit_counts[d as usize - '0' as usize] += 1,
            _ => {}
        }
        if paren < 0 || bracket < 0 {
            return false;
        }
    }
    paren == 0 && bracket == 0 && digit_counts.iter().all(|&c| c % 2 == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_smiles_are_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = random_smiles(&mut rng);
            assert!(is_plausible(&s), "implausible SMILES generated: {s}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn fragment_count_is_clamped() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = smiles(&mut rng, 0);
        assert!(!s.is_empty());
        let long = smiles(&mut rng, 100);
        assert!(long.len() < 200);
    }

    #[test]
    fn plausibility_detects_corruption() {
        assert!(is_plausible("CC(=O)OC1=CC=CC=C1C(=O)O"));
        assert!(!is_plausible("CC(=O"));
        assert!(!is_plausible("C1CC"));
        assert!(!is_plausible("C)"));
        assert!(!is_plausible("[Na"));
    }
}
