//! Domain-conditioned vocabulary for synthetic scientific prose.
//!
//! The generated text does not need to be scientifically meaningful; it needs
//! the statistical properties that matter to the system under test: distinct
//! domain vocabularies (so text classifiers have signal), realistic sentence
//! and paragraph lengths, and a mix of common academic connective tissue.

use docmodel::metadata::Domain;
use rand::Rng;

/// Academic filler shared by all domains.
pub const ACADEMIC_COMMON: &[&str] = &[
    "analysis",
    "approach",
    "baseline",
    "benchmark",
    "comparison",
    "dataset",
    "evaluation",
    "evidence",
    "experiment",
    "framework",
    "hypothesis",
    "limitation",
    "measurement",
    "method",
    "model",
    "observation",
    "parameter",
    "prediction",
    "procedure",
    "result",
    "sample",
    "significance",
    "study",
    "technique",
    "threshold",
    "validation",
    "variance",
];

/// Verbs used in sentence templates.
pub const VERBS: &[&str] = &[
    "demonstrates",
    "suggests",
    "indicates",
    "reveals",
    "confirms",
    "establishes",
    "quantifies",
    "predicts",
    "constrains",
    "improves",
    "outperforms",
    "characterizes",
    "modulates",
    "governs",
    "determines",
];

/// Adjectives used in sentence templates.
pub const ADJECTIVES: &[&str] = &[
    "significant",
    "robust",
    "consistent",
    "novel",
    "substantial",
    "systematic",
    "heterogeneous",
    "empirical",
    "adaptive",
    "scalable",
    "marginal",
    "nonlinear",
    "stochastic",
    "asymptotic",
    "reproducible",
];

/// Connective phrases opening sentences.
pub const CONNECTIVES: &[&str] = &[
    "In contrast",
    "Moreover",
    "Consequently",
    "In particular",
    "Notably",
    "Furthermore",
    "As a result",
    "In practice",
    "Under these conditions",
    "By comparison",
];

/// Domain-specific technical nouns.
pub fn domain_nouns(domain: Domain) -> &'static [&'static str] {
    match domain {
        Domain::Mathematics => &[
            "manifold",
            "operator",
            "eigenvalue",
            "homomorphism",
            "lattice",
            "polytope",
            "martingale",
            "functor",
            "convergence",
            "conjecture",
            "topology",
            "isometry",
            "cardinality",
            "semigroup",
        ],
        Domain::Biology => &[
            "enzyme",
            "genome",
            "protein",
            "phenotype",
            "transcription",
            "mutation",
            "organism",
            "receptor",
            "pathway",
            "chromosome",
            "metabolism",
            "ribosome",
            "expression",
            "homolog",
        ],
        Domain::Chemistry => &[
            "catalyst",
            "ligand",
            "isomer",
            "polymer",
            "electrolyte",
            "reagent",
            "synthesis",
            "oxidation",
            "chromatography",
            "solvent",
            "crystallinity",
            "adsorption",
            "stoichiometry",
            "yield",
        ],
        Domain::Physics => &[
            "boson",
            "plasma",
            "photon",
            "entanglement",
            "superconductor",
            "lattice",
            "neutrino",
            "dispersion",
            "turbulence",
            "magnetization",
            "resonance",
            "spectrum",
            "anisotropy",
            "vacuum",
        ],
        Domain::Engineering => &[
            "actuator",
            "turbine",
            "composite",
            "load",
            "fatigue",
            "controller",
            "sensor",
            "tolerance",
            "throughput",
            "latency",
            "vibration",
            "torque",
            "stiffness",
            "payload",
        ],
        Domain::Medicine => &[
            "cohort",
            "biomarker",
            "placebo",
            "diagnosis",
            "tumor",
            "antibody",
            "dosage",
            "prognosis",
            "morbidity",
            "trial",
            "therapy",
            "remission",
            "pathology",
            "comorbidity",
        ],
        Domain::Economics => &[
            "elasticity",
            "equilibrium",
            "inflation",
            "portfolio",
            "liquidity",
            "incentive",
            "externality",
            "volatility",
            "utility",
            "regression",
            "labor",
            "tariff",
            "endowment",
            "arbitrage",
        ],
        Domain::ComputerScience => &[
            "algorithm",
            "throughput",
            "cache",
            "scheduler",
            "compiler",
            "gradient",
            "embedding",
            "transformer",
            "latency",
            "parallelism",
            "benchmark",
            "pipeline",
            "quantization",
            "inference",
        ],
    }
}

/// Pick a random element of a slice.
pub fn pick<'a, R: Rng + ?Sized>(rng: &mut R, items: &'a [&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

/// Generate one pseudo-scientific sentence for the given domain.
pub fn sentence<R: Rng + ?Sized>(rng: &mut R, domain: Domain) -> String {
    let nouns = domain_nouns(domain);
    let common = ACADEMIC_COMMON;
    let template = rng.gen_range(0..5);
    let s = match template {
        0 => format!(
            "The {} of the {} {} a {} {} across the {}.",
            pick(rng, common),
            pick(rng, nouns),
            pick(rng, VERBS),
            pick(rng, ADJECTIVES),
            pick(rng, common),
            pick(rng, nouns),
        ),
        1 => format!(
            "{}, the {} {} {} when the {} is held constant.",
            pick(rng, CONNECTIVES),
            pick(rng, nouns),
            pick(rng, VERBS),
            pick(rng, ADJECTIVES),
            pick(rng, common),
        ),
        2 => format!(
            "Our {} {} that the {} {} depends on the {} of each {}.",
            pick(rng, common),
            pick(rng, VERBS),
            pick(rng, ADJECTIVES),
            pick(rng, nouns),
            pick(rng, common),
            pick(rng, nouns),
        ),
        3 => format!(
            "We report a {} {} between the {} and the observed {}.",
            pick(rng, ADJECTIVES),
            pick(rng, common),
            pick(rng, nouns),
            pick(rng, common),
        ),
        _ => format!(
            "A {} {} over {} {} samples {} the proposed {}.",
            pick(rng, ADJECTIVES),
            pick(rng, common),
            rng.gen_range(10..5000),
            pick(rng, nouns),
            pick(rng, VERBS),
            pick(rng, common),
        ),
    };
    s
}

/// Generate a paragraph of `n_sentences` sentences.
pub fn paragraph<R: Rng + ?Sized>(rng: &mut R, domain: Domain, n_sentences: usize) -> String {
    (0..n_sentences.max(1)).map(|_| sentence(rng, domain)).collect::<Vec<_>>().join(" ")
}

/// Generate a plausible paper title for the domain.
pub fn title<R: Rng + ?Sized>(rng: &mut R, domain: Domain) -> String {
    let nouns = domain_nouns(domain);
    match rng.gen_range(0..3) {
        0 => format!(
            "On the {} of {} in {} systems",
            pick(rng, ACADEMIC_COMMON),
            pick(rng, nouns),
            pick(rng, ADJECTIVES)
        ),
        1 => format!(
            "{} {} for {} {}",
            capitalize(pick(rng, ADJECTIVES)),
            pick(rng, ACADEMIC_COMMON),
            pick(rng, ADJECTIVES),
            pick(rng, nouns)
        ),
        _ => format!(
            "A {} study of {} and its {}",
            pick(rng, ADJECTIVES),
            pick(rng, nouns),
            pick(rng, ACADEMIC_COMMON)
        ),
    }
}

/// Generate a bibliographic reference entry.
pub fn reference<R: Rng + ?Sized>(rng: &mut R, domain: Domain) -> (String, String) {
    const SURNAMES: &[&str] = &[
        "Smith",
        "Chen",
        "Garcia",
        "Kumar",
        "Okafor",
        "Novak",
        "Tanaka",
        "Mueller",
        "Rossi",
        "Johansson",
        "Alvarez",
        "Haddad",
    ];
    let year = rng.gen_range(1995..2025);
    let first = pick(rng, SURNAMES);
    let second = pick(rng, SURNAMES);
    let key = format!("{}{}", first.to_lowercase(), year);
    let text =
        format!("{first}, {second} et al. ({year}). {}. Journal of {}.", title(rng, domain), domain.name());
    (key, text)
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_domain_has_a_distinct_vocabulary() {
        for d in Domain::ALL {
            assert!(domain_nouns(d).len() >= 10, "{d:?} vocabulary too small");
        }
        // Domains must not share their full noun lists (classifier signal).
        assert_ne!(domain_nouns(Domain::Biology), domain_nouns(Domain::Physics));
    }

    #[test]
    fn sentences_are_nonempty_and_domain_flavoured() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut found_domain_word = false;
        for _ in 0..50 {
            let s = sentence(&mut rng, Domain::Chemistry);
            assert!(s.ends_with('.'));
            assert!(s.split_whitespace().count() >= 6);
            if domain_nouns(Domain::Chemistry).iter().any(|n| s.contains(n)) {
                found_domain_word = true;
            }
        }
        assert!(found_domain_word, "chemistry sentences should mention chemistry nouns");
    }

    #[test]
    fn paragraph_has_requested_sentence_count() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = paragraph(&mut rng, Domain::Biology, 4);
        assert!(p.matches('.').count() >= 4);
        let single = paragraph(&mut rng, Domain::Biology, 0);
        assert!(!single.is_empty());
    }

    #[test]
    fn titles_and_references_are_generated() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = title(&mut rng, Domain::Economics);
        assert!(t.split_whitespace().count() >= 4);
        let (key, text) = reference(&mut rng, Domain::Economics);
        assert!(!key.is_empty());
        assert!(text.contains("Journal of Economics"));
        assert!(key.chars().any(|c| c.is_ascii_digit()));
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(sentence(&mut a, Domain::Physics), sentence(&mut b, Domain::Physics));
        assert_eq!(title(&mut a, Domain::Physics), title(&mut b, Domain::Physics));
    }

    #[test]
    fn capitalize_handles_edge_cases() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("x"), "X");
        assert_eq!(capitalize("robust"), "Robust");
    }
}
