//! CLS I: rule-based validation of the extracted text.
//!
//! The first stage operates on "coarse but fast-to-compute features (e.g.,
//! text length)" of the PyMuPDF extraction. If the extraction looks invalid —
//! too short for the page count, dominated by symbols, or not word-like —
//! the document is routed straight to the high-quality parser without
//! spending any model inference on it.

use serde::{Deserialize, Serialize};
use textmetrics::tokenize::{alphanumeric_ratio, count_words, wordlike_ratio};

/// Decision produced by CLS I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cls1Decision {
    /// The extraction looks like real text; later stages may still improve it.
    Valid,
    /// The extraction is unusable; route to the high-quality parser.
    Invalid,
}

/// Thresholds of the rule-based validator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidityRules {
    /// Minimum number of word tokens per page.
    pub min_words_per_page: f64,
    /// Minimum fraction of word-like tokens.
    pub min_wordlike_ratio: f64,
    /// Minimum fraction of alphanumeric characters.
    pub min_alphanumeric_ratio: f64,
}

impl Default for ValidityRules {
    fn default() -> Self {
        ValidityRules { min_words_per_page: 40.0, min_wordlike_ratio: 0.55, min_alphanumeric_ratio: 0.70 }
    }
}

impl ValidityRules {
    /// Classify an extraction given the number of pages it should cover.
    pub fn decide(&self, extracted_text: &str, pages: usize) -> Cls1Decision {
        if self.is_valid(extracted_text, pages) {
            Cls1Decision::Valid
        } else {
            Cls1Decision::Invalid
        }
    }

    /// Whether an extraction passes all rules.
    pub fn is_valid(&self, extracted_text: &str, pages: usize) -> bool {
        let pages = pages.max(1) as f64;
        let words = count_words(extracted_text) as f64;
        if words / pages < self.min_words_per_page {
            return false;
        }
        if wordlike_ratio(extracted_text) < self.min_wordlike_ratio {
            return false;
        }
        if alphanumeric_ratio(extracted_text) < self.min_alphanumeric_ratio {
            return false;
        }
        true
    }

    /// The fraction of samples a rule set marks invalid (used to sanity-check
    /// thresholds against a corpus).
    pub fn invalid_fraction<'a, I>(&self, samples: I) -> f64
    where
        I: IntoIterator<Item = (&'a str, usize)>,
    {
        let mut total = 0usize;
        let mut invalid = 0usize;
        for (text, pages) in samples {
            total += 1;
            if !self.is_valid(text, pages) {
                invalid += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            invalid as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_page_text() -> String {
        "The measurement of enzyme kinetics demonstrates a robust relationship between substrate \
         concentration and the observed reaction rate across all tested conditions in the study. "
            .repeat(3)
    }

    #[test]
    fn clean_prose_is_valid() {
        let rules = ValidityRules::default();
        assert_eq!(rules.decide(&normal_page_text(), 1), Cls1Decision::Valid);
    }

    #[test]
    fn empty_or_tiny_extraction_is_invalid() {
        let rules = ValidityRules::default();
        assert_eq!(rules.decide("", 1), Cls1Decision::Invalid);
        assert_eq!(rules.decide("only a few words here", 1), Cls1Decision::Invalid);
        // Enough words overall but spread over many pages.
        assert_eq!(rules.decide(&normal_page_text(), 20), Cls1Decision::Invalid);
    }

    #[test]
    fn symbol_soup_is_invalid() {
        let rules = ValidityRules::default();
        let soup = "{}$ \\^ %% ## @@ || ((( ]] ~~ ".repeat(30);
        assert_eq!(rules.decide(&soup, 1), Cls1Decision::Invalid);
    }

    #[test]
    fn scrambled_short_tokens_are_invalid() {
        let rules = ValidityRules::default();
        let scrambled = "q3 x9 z1 k2 p0 w4 j7 v5 ".repeat(20);
        assert_eq!(rules.decide(&scrambled, 1), Cls1Decision::Invalid);
    }

    #[test]
    fn invalid_fraction_aggregates() {
        let rules = ValidityRules::default();
        let good = normal_page_text();
        let samples = vec![(good.as_str(), 1usize), ("", 1), ("tiny", 1)];
        let f = rules.invalid_fraction(samples);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rules.invalid_fraction(Vec::<(&str, usize)>::new()), 0.0);
    }

    #[test]
    fn thresholds_are_tunable() {
        let lenient =
            ValidityRules { min_words_per_page: 1.0, min_wordlike_ratio: 0.0, min_alphanumeric_ratio: 0.0 };
        assert_eq!(lenient.decide("two words", 1), Cls1Decision::Valid);
    }
}
