//! CLS II: metadata-driven prediction of whether a better parse is likely.
//!
//! For documents whose extraction passed CLS I, the second stage asks a
//! cheaper question than "which parser is best": *is any other parser likely
//! to improve meaningfully over the extraction?* The paper infers this binary
//! label from metadata (authoring tool, year, number of pages, publisher).

use mlcore::linear::LogisticRegression;
use serde::{Deserialize, Serialize};

use crate::dataset::AccuracySample;

/// Improvement threshold (in BLEU) above which a document is labelled
/// "another parser would meaningfully improve it".
pub const DEFAULT_IMPROVEMENT_THRESHOLD: f64 = 0.05;

/// Metadata-driven binary classifier: "is an improvement likely?".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImprovementClassifier {
    model: LogisticRegression,
    threshold: f64,
}

impl ImprovementClassifier {
    /// Untrained classifier for the standard 27+1-dimensional metadata
    /// feature vector (metadata one-hots plus normalized page count).
    pub fn new() -> Self {
        ImprovementClassifier { model: LogisticRegression::new(28), threshold: DEFAULT_IMPROVEMENT_THRESHOLD }
    }

    /// Override the improvement threshold used to derive training labels.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    fn features(sample: &AccuracySample) -> Vec<f64> {
        let mut f = sample.metadata_features.clone();
        f.push((sample.pages as f64 / 30.0).min(2.0));
        f
    }

    fn label(&self, sample: &AccuracySample) -> bool {
        sample.improvement_over_extraction() > self.threshold
    }

    /// Train on labelled samples.
    pub fn fit(&mut self, samples: &[AccuracySample]) {
        if samples.is_empty() {
            return;
        }
        let xs: Vec<Vec<f64>> = samples.iter().map(Self::features).collect();
        let ys: Vec<bool> = samples.iter().map(|s| self.label(s)).collect();
        self.model.fit(&xs, &ys, 300, 0.5, 1e-4);
    }

    /// Probability that another parser meaningfully improves this document.
    pub fn improvement_probability(&self, sample: &AccuracySample) -> f64 {
        self.model.predict_proba(&Self::features(sample))
    }

    /// Hard decision at 0.5.
    pub fn improvement_likely(&self, sample: &AccuracySample) -> bool {
        self.improvement_probability(sample) >= 0.5
    }

    /// Classification accuracy against the derived labels.
    pub fn accuracy(&self, samples: &[AccuracySample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|s| self.improvement_likely(s) == self.label(s)).count();
        correct as f64 / samples.len() as f64
    }
}

impl Default for ImprovementClassifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsersim::ParserKind;

    /// Synthetic samples where scanner-produced documents (producer one-hot
    /// index 18 in the 27-feature metadata vector) improve a lot and
    /// born-digital ones do not.
    fn synthetic_samples(n: usize) -> Vec<AccuracySample> {
        (0..n)
            .map(|i| {
                let scanned = i % 2 == 0;
                let mut metadata = vec![0.0; 27];
                metadata[0] = 1.0; // publisher
                metadata[6] = 1.0; // domain
                metadata[14 + if scanned { 4 } else { 0 }] = 1.0; // producer: Scanner vs PdfLatex
                metadata[21 + 3] = 1.0; // format 1.7
                metadata[26] = 0.85;
                let mut targets = vec![0.3; ParserKind::ALL.len()];
                if scanned {
                    targets[ParserKind::PyMuPdf.index()] = 0.05;
                    targets[ParserKind::Nougat.index()] = 0.6;
                } else {
                    targets[ParserKind::PyMuPdf.index()] = 0.62;
                    targets[ParserKind::Nougat.index()] = 0.6;
                }
                AccuracySample {
                    doc_id: i as u64,
                    first_page_text: String::new(),
                    title: String::new(),
                    metadata_features: metadata,
                    targets,
                    pages: 5,
                }
            })
            .collect()
    }

    #[test]
    fn classifier_learns_the_metadata_signal() {
        let samples = synthetic_samples(120);
        let mut clf = ImprovementClassifier::new();
        clf.fit(&samples);
        assert!(clf.accuracy(&samples) > 0.9, "accuracy = {}", clf.accuracy(&samples));
        // Scanner docs (even indices) should have high improvement probability.
        assert!(clf.improvement_probability(&samples[0]) > 0.6);
        assert!(clf.improvement_probability(&samples[1]) < 0.4);
    }

    #[test]
    fn untrained_classifier_is_indifferent() {
        let clf = ImprovementClassifier::new();
        let samples = synthetic_samples(2);
        let p = clf.improvement_probability(&samples[0]);
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_fit_and_accuracy() {
        let mut clf = ImprovementClassifier::new();
        clf.fit(&[]);
        assert_eq!(clf.accuracy(&[]), 0.0);
    }

    #[test]
    fn threshold_changes_labels() {
        let samples = synthetic_samples(4);
        let strict = ImprovementClassifier::new().with_threshold(0.9);
        // With an extreme threshold nothing is an improvement, so labels are
        // all false and an untrained model (p = 0.5 -> likely) is wrong.
        assert!(!strict.label(&samples[0]));
        let lenient = ImprovementClassifier::new().with_threshold(0.0);
        assert!(lenient.label(&samples[0]));
    }
}
