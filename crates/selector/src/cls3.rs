//! CLS III: text-driven accuracy prediction and parser selection.
//!
//! The third stage embeds the first-page extraction with a frozen
//! "pretrained" encoder, regresses the BLEU every parser would achieve on the
//! document (the paper's m = 6 output head), and selects the argmax —
//! optionally restricted to the parsers AdaParse actually deploys. Human
//! preference data enters through DPO: a scalar quality scorer is post-trained
//! on (preferred output, rejected output) pairs and distilled into a
//! per-parser alignment bias added to the predicted accuracies.

use mlcore::dpo::{DpoConfig, DpoTrainer, PreferencePair};
use mlcore::encoder::{EncoderProfile, PretrainedEncoder};
use mlcore::eval::r_squared;
use mlcore::linear::LinearRegression;
use parsersim::ParserKind;
use serde::{Deserialize, Serialize};

use crate::dataset::AccuracySample;

/// A human preference between two parser outputs for the same document page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParserPreference {
    /// Parser whose output was preferred.
    pub preferred: ParserKind,
    /// Text of the preferred output (a page-sized excerpt).
    pub preferred_text: String,
    /// Parser whose output was rejected.
    pub rejected: ParserKind,
    /// Text of the rejected output.
    pub rejected_text: String,
}

/// Configuration of the CLS III predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Which frozen encoder to build on.
    pub encoder: EncoderProfile,
    /// Supervised fine-tuning epochs.
    pub epochs: usize,
    /// Supervised learning rate.
    pub learning_rate: f64,
    /// L2 regularization of the regression head.
    pub l2: f64,
    /// Weight of the DPO-derived per-parser alignment bias.
    pub dpo_weight: f64,
    /// DPO hyperparameters.
    pub dpo: DpoConfig,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            encoder: EncoderProfile::SciBert,
            epochs: 250,
            learning_rate: 0.4,
            l2: 1e-4,
            dpo_weight: 0.05,
            dpo: DpoConfig::default(),
        }
    }
}

/// The CLS III accuracy predictor.
#[derive(Debug, Clone)]
pub struct AccuracyPredictor {
    encoder: PretrainedEncoder,
    head: LinearRegression,
    parser_bias: Vec<f64>,
    config: PredictorConfig,
    dpo_pair_accuracy: Option<f64>,
}

impl AccuracyPredictor {
    /// Untrained predictor with the given configuration.
    pub fn new(config: PredictorConfig) -> Self {
        let encoder = PretrainedEncoder::new(config.encoder);
        let head = LinearRegression::new(encoder.embedding_dim(), ParserKind::ALL.len());
        AccuracyPredictor {
            encoder,
            head,
            parser_bias: vec![0.0; ParserKind::ALL.len()],
            config,
            dpo_pair_accuracy: None,
        }
    }

    /// The encoder profile in use.
    pub fn encoder_profile(&self) -> EncoderProfile {
        self.encoder.profile()
    }

    /// Supervised fine-tuning: regress per-parser BLEU from first-page text.
    pub fn fit_regression(&mut self, samples: &[AccuracySample]) {
        if samples.is_empty() {
            return;
        }
        let xs: Vec<Vec<f64>> = samples.iter().map(|s| self.encoder.encode(&s.first_page_text)).collect();
        let ys: Vec<Vec<f64>> = samples.iter().map(|s| s.targets.clone()).collect();
        self.head.fit(&xs, &ys, self.config.epochs, self.config.learning_rate, self.config.l2);
    }

    /// DPO post-training on human preference pairs. A scalar quality scorer is
    /// trained with the DPO objective on output-text embeddings; the mean
    /// score each parser's outputs receive becomes a per-parser alignment
    /// bias. Returns the trainer's pairwise accuracy after training.
    pub fn fit_preferences(&mut self, preferences: &[ParserPreference]) -> f64 {
        if preferences.is_empty() {
            return 0.0;
        }
        let pairs: Vec<PreferencePair> = preferences
            .iter()
            .map(|p| PreferencePair {
                preferred: self.encoder.encode(&p.preferred_text),
                rejected: self.encoder.encode(&p.rejected_text),
            })
            .collect();
        let dim = self.encoder.embedding_dim();
        let mut trainer = DpoTrainer::from_reference(vec![0.0; dim], 0.0, self.config.dpo);
        trainer.train(&pairs);
        let accuracy = trainer.pairwise_accuracy(&pairs);
        self.dpo_pair_accuracy = Some(accuracy);

        // Distil the scorer into a per-parser bias: average the quality score
        // of each parser's outputs seen during the study, then centre it.
        let mut sums = vec![0.0; ParserKind::ALL.len()];
        let mut counts = vec![0usize; ParserKind::ALL.len()];
        for (preference, pair) in preferences.iter().zip(&pairs) {
            sums[preference.preferred.index()] += trainer.score(&pair.preferred);
            counts[preference.preferred.index()] += 1;
            sums[preference.rejected.index()] += trainer.score(&pair.rejected);
            counts[preference.rejected.index()] += 1;
        }
        let means: Vec<f64> =
            sums.iter().zip(&counts).map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 }).collect();
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        self.parser_bias = means.iter().map(|m| self.config.dpo_weight * (m - grand)).collect();
        accuracy
    }

    /// Pairwise preference accuracy achieved during DPO training, if run.
    pub fn dpo_pair_accuracy(&self) -> Option<f64> {
        self.dpo_pair_accuracy
    }

    /// Per-parser alignment bias (zero before [`Self::fit_preferences`]).
    pub fn parser_bias(&self) -> &[f64] {
        &self.parser_bias
    }

    /// Predicted BLEU for every parser, in [`ParserKind::ALL`] order, clamped
    /// to `[0, 1]` before the alignment bias is added.
    pub fn predict_accuracies(&self, first_page_text: &str) -> Vec<f64> {
        let embedding = self.encoder.encode(first_page_text);
        self.head
            .predict(&embedding)
            .iter()
            .zip(&self.parser_bias)
            .map(|(p, b)| p.clamp(0.0, 1.0) + b)
            .collect()
    }

    /// Select the parser with the highest predicted accuracy.
    pub fn select(&self, first_page_text: &str) -> ParserKind {
        self.select_restricted(first_page_text, &ParserKind::ALL)
    }

    /// Select the best parser among an allowed subset (AdaParse restricts
    /// itself to PyMuPDF and Nougat for scalability, Appendix C).
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    pub fn select_restricted(&self, first_page_text: &str, allowed: &[ParserKind]) -> ParserKind {
        assert!(!allowed.is_empty(), "allowed parser set must not be empty");
        let predictions = self.predict_accuracies(first_page_text);
        *allowed
            .iter()
            .max_by(|a, b| {
                predictions[a.index()]
                    .partial_cmp(&predictions[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty allowed set")
    }

    /// Predicted BLEU improvement of `candidate` over `baseline` for a
    /// document (used by the budget optimizer's ranking).
    pub fn predicted_improvement(
        &self,
        first_page_text: &str,
        candidate: ParserKind,
        baseline: ParserKind,
    ) -> f64 {
        let predictions = self.predict_accuracies(first_page_text);
        predictions[candidate.index()] - predictions[baseline.index()]
    }

    /// R² of the predicted accuracy of one parser over a sample set (the
    /// paper reports ≈40 % for PyMuPDF and ≈46.5 % for Nougat).
    pub fn r_squared_for(&self, kind: ParserKind, samples: &[AccuracySample]) -> f64 {
        let predicted: Vec<f64> =
            samples.iter().map(|s| self.predict_accuracies(&s.first_page_text)[kind.index()]).collect();
        let observed: Vec<f64> = samples.iter().map(|s| s.target_for(kind)).collect();
        r_squared(&predicted, &observed)
    }

    /// Fraction of samples where the selected parser equals the BLEU-maximal
    /// parser (Table 4's "ACC" column).
    pub fn selection_accuracy(&self, samples: &[AccuracySample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples.iter().filter(|s| self.select(&s.first_page_text) == s.best_parser()).count();
        correct as f64 / samples.len() as f64
    }

    /// Mean BLEU achieved on `samples` when parsing each document with the
    /// parser this predictor selects.
    pub fn achieved_bleu(&self, samples: &[AccuracySample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().map(|s| s.target_for(self.select(&s.first_page_text))).sum::<f64>()
            / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic samples with a learnable rule: pages mentioning "scan"
    /// favour Nougat, pages mentioning "clean" favour PyMuPDF.
    fn synthetic_samples(n: usize) -> Vec<AccuracySample> {
        (0..n)
            .map(|i| {
                let scanned = i % 2 == 0;
                let text = if scanned {
                    format!("scan artifact garbled {} fragment noise blur", i)
                } else {
                    format!("clean prose with ordinary scientific sentences number {}", i)
                };
                let mut targets = vec![0.2; ParserKind::ALL.len()];
                if scanned {
                    targets[ParserKind::Nougat.index()] = 0.7;
                    targets[ParserKind::PyMuPdf.index()] = 0.1;
                } else {
                    targets[ParserKind::Nougat.index()] = 0.55;
                    targets[ParserKind::PyMuPdf.index()] = 0.75;
                }
                AccuracySample {
                    doc_id: i as u64,
                    first_page_text: text,
                    title: String::new(),
                    metadata_features: vec![0.0; 27],
                    targets,
                    pages: 4,
                }
            })
            .collect()
    }

    #[test]
    fn regression_learns_to_route_by_text() {
        let samples = synthetic_samples(80);
        let mut predictor = AccuracyPredictor::new(PredictorConfig::default());
        predictor.fit_regression(&samples);
        let acc = predictor.selection_accuracy(&samples);
        assert!(acc > 0.8, "selection accuracy = {acc}");
        let achieved = predictor.achieved_bleu(&samples);
        let random_ish = 0.35;
        assert!(achieved > random_ish);
        // Restricted selection only ever returns allowed parsers.
        let restricted = predictor
            .select_restricted(&samples[0].first_page_text, &[ParserKind::PyMuPdf, ParserKind::Nougat]);
        assert!(matches!(restricted, ParserKind::PyMuPdf | ParserKind::Nougat));
    }

    #[test]
    fn r_squared_is_meaningful_after_training() {
        let samples = synthetic_samples(60);
        let mut predictor = AccuracyPredictor::new(PredictorConfig::default());
        let before = predictor.r_squared_for(ParserKind::Nougat, &samples);
        predictor.fit_regression(&samples);
        let after = predictor.r_squared_for(ParserKind::Nougat, &samples);
        assert!(after > before, "r2 {before} -> {after}");
        assert!(after > 0.3);
    }

    #[test]
    fn dpo_biases_selection_toward_preferred_parser() {
        let samples = synthetic_samples(40);
        let mut predictor =
            AccuracyPredictor::new(PredictorConfig { dpo_weight: 0.2, ..PredictorConfig::default() });
        predictor.fit_regression(&samples);
        // Humans systematically prefer Nougat's output over pypdf's.
        let preferences: Vec<ParserPreference> = (0..30)
            .map(|i| ParserPreference {
                preferred: ParserKind::Nougat,
                preferred_text: format!("well formed faithful text with equations preserved {i}"),
                rejected: ParserKind::Pypdf,
                rejected_text: format!("g arbled wh itespace r i d d l e d te xt {i}"),
            })
            .collect();
        let pair_accuracy = predictor.fit_preferences(&preferences);
        assert!(pair_accuracy > 0.8, "dpo pair accuracy = {pair_accuracy}");
        assert!(predictor.dpo_pair_accuracy().is_some());
        let bias = predictor.parser_bias();
        assert!(
            bias[ParserKind::Nougat.index()] > bias[ParserKind::Pypdf.index()],
            "nougat bias {} must exceed pypdf bias {}",
            bias[ParserKind::Nougat.index()],
            bias[ParserKind::Pypdf.index()]
        );
    }

    #[test]
    fn untrained_predictor_is_usable_and_bounded() {
        let predictor = AccuracyPredictor::new(PredictorConfig::default());
        let preds = predictor.predict_accuracies("any text at all");
        assert_eq!(preds.len(), ParserKind::ALL.len());
        assert!(preds.iter().all(|p| p.is_finite()));
        assert_eq!(predictor.dpo_pair_accuracy(), None);
        assert_eq!(predictor.selection_accuracy(&[]), 0.0);
        assert_eq!(predictor.achieved_bleu(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "allowed parser set")]
    fn empty_allowed_set_panics() {
        AccuracyPredictor::new(PredictorConfig::default()).select_restricted("text", &[]);
    }

    #[test]
    fn predicted_improvement_is_antisymmetric() {
        let predictor = AccuracyPredictor::new(PredictorConfig::default());
        let a = predictor.predicted_improvement("text", ParserKind::Nougat, ParserKind::PyMuPdf);
        let b = predictor.predicted_improvement("text", ParserKind::PyMuPdf, ParserKind::Nougat);
        assert!((a + b).abs() < 1e-12);
    }
}
