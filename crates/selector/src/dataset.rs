//! The supervised dataset behind the selector: per-document first-page text,
//! metadata features and per-parser BLEU targets.
//!
//! In the paper the regression dataset holds N = 29 200 (page text, BLEU)
//! pairs with an m = 6 dimensional target (one accuracy per parser). Here the
//! dataset is built by running the parser zoo over a generated corpus and
//! scoring each output against ground truth.

use docmodel::document::Document;
use parsersim::evaluate::{evaluate_corpus, DocumentEvaluation};
use parsersim::ParserKind;
use serde::{Deserialize, Serialize};

/// One training/evaluation sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracySample {
    /// Document identifier.
    pub doc_id: u64,
    /// PyMuPDF extraction of the first page (CLS I / CLS III input).
    pub first_page_text: String,
    /// Document title (CLS II input).
    pub title: String,
    /// Dense metadata features (CLS I / CLS II input).
    pub metadata_features: Vec<f64>,
    /// Per-parser BLEU targets in [`ParserKind::ALL`] order.
    pub targets: Vec<f64>,
    /// Number of pages in the document.
    pub pages: usize,
}

impl AccuracySample {
    /// Index (into [`ParserKind::ALL`]) of the BLEU-maximal parser.
    pub fn best_parser_index(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.targets.iter().enumerate() {
            if *v > self.targets[best] {
                best = i;
            }
        }
        best
    }

    /// The BLEU-maximal parser.
    pub fn best_parser(&self) -> ParserKind {
        ParserKind::ALL[self.best_parser_index()]
    }

    /// BLEU of a specific parser on this document.
    pub fn target_for(&self, kind: ParserKind) -> f64 {
        self.targets[kind.index()]
    }

    /// Expected improvement of the best parser over PyMuPDF.
    pub fn improvement_over_extraction(&self) -> f64 {
        self.targets[self.best_parser_index()] - self.target_for(ParserKind::PyMuPdf)
    }
}

/// A dataset of [`AccuracySample`]s with a train/test split boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyDataset {
    samples: Vec<AccuracySample>,
    train_len: usize,
}

impl AccuracyDataset {
    /// Build a dataset by evaluating `documents` with the full parser zoo.
    ///
    /// `train_fraction` of the samples (in document order) become the
    /// training split; the rest are the test split.
    pub fn build(documents: &[Document], seed: u64, train_fraction: f64) -> AccuracyDataset {
        let evaluations = evaluate_corpus(documents, seed);
        Self::from_evaluations(documents, &evaluations, train_fraction)
    }

    /// Build from precomputed evaluations (avoids re-running the parsers).
    ///
    /// # Panics
    ///
    /// Panics if `documents` and `evaluations` have different lengths.
    pub fn from_evaluations(
        documents: &[Document],
        evaluations: &[DocumentEvaluation],
        train_fraction: f64,
    ) -> AccuracyDataset {
        assert_eq!(documents.len(), evaluations.len(), "documents/evaluations length mismatch");
        let samples: Vec<AccuracySample> = documents
            .iter()
            .zip(evaluations.iter())
            .map(|(doc, eval)| AccuracySample {
                doc_id: doc.id.0,
                first_page_text: eval.first_page_extraction.clone(),
                title: doc.metadata.title.clone(),
                metadata_features: doc.metadata.feature_vector(),
                targets: eval.bleu_targets(),
                pages: doc.page_count(),
            })
            .collect();
        let train_len =
            (((samples.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize).min(samples.len());
        AccuracyDataset { samples, train_len }
    }

    /// All samples.
    pub fn samples(&self) -> &[AccuracySample] {
        &self.samples
    }

    /// Training split.
    pub fn train(&self) -> &[AccuracySample] {
        &self.samples[..self.train_len]
    }

    /// Test split.
    pub fn test(&self) -> &[AccuracySample] {
        &self.samples[self.train_len..]
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean BLEU achieved by always picking the per-document best parser
    /// (the "BLEU-maximal selection" reference row of Table 4).
    pub fn oracle_bleu(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.targets[s.best_parser_index()]).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean BLEU achieved by always picking the per-document worst parser.
    pub fn worst_case_bleu(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.targets.iter().cloned().fold(f64::INFINITY, f64::min)).sum::<f64>()
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn dataset(n: usize) -> AccuracyDataset {
        let docs = DocumentGenerator::new(GeneratorConfig {
            n_documents: n,
            seed: 61,
            min_pages: 1,
            max_pages: 2,
            ..Default::default()
        })
        .generate_many(n);
        AccuracyDataset::build(&docs, 3, 0.7)
    }

    #[test]
    fn dataset_has_full_targets_and_split() {
        let ds = dataset(12);
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.train().len() + ds.test().len(), 12);
        assert!(!ds.train().is_empty());
        assert!(!ds.test().is_empty());
        for sample in ds.samples() {
            assert_eq!(sample.targets.len(), ParserKind::ALL.len());
            assert_eq!(sample.metadata_features.len(), 27);
            assert!(sample.targets.iter().all(|t| (0.0..=1.0).contains(t)));
        }
    }

    #[test]
    fn oracle_dominates_every_fixed_parser_and_the_worst_case() {
        let ds = dataset(14);
        let oracle = ds.oracle_bleu();
        let worst = ds.worst_case_bleu();
        assert!(oracle >= worst);
        for kind in ParserKind::ALL {
            let fixed: f64 = ds.samples().iter().map(|s| s.target_for(kind)).sum::<f64>() / ds.len() as f64;
            assert!(oracle >= fixed - 1e-9, "oracle {oracle} must dominate {kind} at {fixed}");
        }
    }

    #[test]
    fn best_parser_helpers_agree() {
        let ds = dataset(6);
        for sample in ds.samples() {
            let idx = sample.best_parser_index();
            assert_eq!(sample.best_parser(), ParserKind::ALL[idx]);
            assert!(sample.improvement_over_extraction() >= -1e-12);
        }
    }

    #[test]
    fn empty_dataset_behaves() {
        let ds = AccuracyDataset::from_evaluations(&[], &[], 0.7);
        assert!(ds.is_empty());
        assert_eq!(ds.oracle_bleu(), 0.0);
        assert_eq!(ds.worst_case_bleu(), 0.0);
    }
}
