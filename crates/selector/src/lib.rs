//! The hierarchical parser-selection pipeline (paper §5.1, Figure 2).
//!
//! AdaParse routes every document through up to three classification stages,
//! each conditioned on progressively richer (and costlier) signals:
//!
//! * **CLS I** ([`cls1`]) — rule-based validation of the cheap PyMuPDF
//!   extraction from coarse aggregate statistics (text length, symbol
//!   ratios). Invalid extractions go straight to the high-quality parser.
//! * **CLS II** ([`cls2`]) — a metadata-driven classifier estimating whether
//!   any other parser is likely to improve over the extraction.
//! * **CLS III** ([`cls3`]) — a text-driven accuracy predictor (frozen
//!   encoder + trainable head, optionally DPO-aligned) that regresses the
//!   BLEU of every parser from the first-page text and picks the best one.
//!
//! [`dataset`] builds the supervised regression dataset from parser
//! evaluations, and [`modelzoo`] reproduces the prediction-model comparison
//! of the paper's Table 4.

pub mod cls1;
pub mod cls2;
pub mod cls3;
pub mod dataset;
pub mod modelzoo;

pub use cls1::{Cls1Decision, ValidityRules};
pub use cls2::ImprovementClassifier;
pub use cls3::{AccuracyPredictor, PredictorConfig};
pub use dataset::{AccuracyDataset, AccuracySample};
pub use modelzoo::{ModelZooEntry, Table4Row};
