//! The prediction-model comparison of the paper's Table 4.
//!
//! Table 4 evaluates a spectrum of prediction models for parser selection:
//! CLS III text-driven LLM regressors (SciBERT ± DPO, BERT), CLS II
//! title/metadata encoders (SPECTER, MiniLM), CLS I metadata-only SVCs over
//! different feature subsets, and three reference policies (BLEU-maximal,
//! random, BLEU-minimal selection). Every entry here trains on the dataset's
//! training split and is scored by the quality its *selections* achieve on
//! the test split.

use mlcore::encoder::EncoderProfile;
use mlcore::linear::LinearSvc;
use parsersim::evaluate::DocumentEvaluation;
use parsersim::ParserKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cls3::{AccuracyPredictor, ParserPreference, PredictorConfig};
use crate::dataset::{AccuracyDataset, AccuracySample};

/// One row of Table 4: achieved quality of a prediction model's selections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Model name as printed in the table.
    pub name: String,
    /// Mean BLEU of the selected parsers' outputs (fraction, not %).
    pub bleu: f64,
    /// Mean ROUGE-L of the selected outputs.
    pub rouge: f64,
    /// Mean CAR of the selected outputs.
    pub car: f64,
    /// Fraction of documents where the selection equals the BLEU-maximal parser.
    pub selection_accuracy: f64,
}

/// A Table 4 model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelZooEntry {
    /// CLS III: SciBERT text regression with DPO post-training.
    TextSciBertDpo,
    /// CLS III: SciBERT text regression.
    TextSciBert,
    /// CLS III: BERT text regression.
    TextBert,
    /// CLS II: SPECTER on title + metadata.
    TitleMetadataSpecter,
    /// CLS II: SPECTER on title only.
    TitleSpecter,
    /// CLS II: MiniLM on title + metadata.
    TitleMetadataMiniLm,
    /// CLS I: SVC on format + producer.
    SvcFormatProducer,
    /// CLS I: SVC on format only.
    SvcFormat,
    /// CLS I: SVC on year + producer.
    SvcYearProducer,
    /// CLS I: SVC on publisher + (sub-)category.
    SvcPublisherCategory,
    /// Reference: always pick the BLEU-maximal parser (oracle).
    BleuMaximal,
    /// Reference: pick a parser uniformly at random.
    RandomSelection,
    /// Reference: always pick the BLEU-minimal parser.
    BleuMinimal,
}

impl ModelZooEntry {
    /// All rows in the order the paper lists them.
    pub const ALL: [ModelZooEntry; 13] = [
        ModelZooEntry::TextSciBertDpo,
        ModelZooEntry::TextSciBert,
        ModelZooEntry::TextBert,
        ModelZooEntry::TitleMetadataSpecter,
        ModelZooEntry::TitleSpecter,
        ModelZooEntry::TitleMetadataMiniLm,
        ModelZooEntry::SvcFormatProducer,
        ModelZooEntry::SvcFormat,
        ModelZooEntry::SvcYearProducer,
        ModelZooEntry::SvcPublisherCategory,
        ModelZooEntry::BleuMaximal,
        ModelZooEntry::RandomSelection,
        ModelZooEntry::BleuMinimal,
    ];

    /// Display name as used in Table 4.
    pub fn name(&self) -> &'static str {
        match self {
            ModelZooEntry::TextSciBertDpo => "Text (SciBERT + DPO)",
            ModelZooEntry::TextSciBert => "Text (SciBERT)",
            ModelZooEntry::TextBert => "Text (BERT)",
            ModelZooEntry::TitleMetadataSpecter => "Title + Metadata (SPECTER)",
            ModelZooEntry::TitleSpecter => "Title (SPECTER)",
            ModelZooEntry::TitleMetadataMiniLm => "Title + Metadata (MiniLM-L6)",
            ModelZooEntry::SvcFormatProducer => "Format + Producer (SVC)",
            ModelZooEntry::SvcFormat => "Format (SVC)",
            ModelZooEntry::SvcYearProducer => "Year + Producer (SVC)",
            ModelZooEntry::SvcPublisherCategory => "Publisher + (Sub-)category (SVC)",
            ModelZooEntry::BleuMaximal => "BLEU-maximal selection",
            ModelZooEntry::RandomSelection => "Random selection",
            ModelZooEntry::BleuMinimal => "BLEU-minimal selection",
        }
    }

    /// Train the entry on the dataset's training split and evaluate its
    /// selections on the test split. `evaluations` must cover every test
    /// document (keyed by document id) so the achieved ROUGE/CAR of the
    /// selected parser can be looked up. `preferences` feed the DPO variant.
    pub fn evaluate(
        &self,
        dataset: &AccuracyDataset,
        evaluations: &[DocumentEvaluation],
        preferences: &[ParserPreference],
        seed: u64,
    ) -> Table4Row {
        let selections: Vec<ParserKind> = match self {
            ModelZooEntry::TextSciBertDpo => {
                let mut predictor = AccuracyPredictor::new(PredictorConfig {
                    encoder: EncoderProfile::SciBert,
                    ..PredictorConfig::default()
                });
                predictor.fit_regression(dataset.train());
                predictor.fit_preferences(preferences);
                dataset.test().iter().map(|s| predictor.select(&s.first_page_text)).collect()
            }
            ModelZooEntry::TextSciBert | ModelZooEntry::TextBert => {
                let encoder = if matches!(self, ModelZooEntry::TextSciBert) {
                    EncoderProfile::SciBert
                } else {
                    EncoderProfile::Bert
                };
                let mut predictor =
                    AccuracyPredictor::new(PredictorConfig { encoder, ..PredictorConfig::default() });
                predictor.fit_regression(dataset.train());
                dataset.test().iter().map(|s| predictor.select(&s.first_page_text)).collect()
            }
            ModelZooEntry::TitleMetadataSpecter
            | ModelZooEntry::TitleSpecter
            | ModelZooEntry::TitleMetadataMiniLm => {
                let encoder = if matches!(self, ModelZooEntry::TitleMetadataMiniLm) {
                    EncoderProfile::MiniLm
                } else {
                    EncoderProfile::Specter
                };
                let use_metadata = !matches!(self, ModelZooEntry::TitleSpecter);
                let mut predictor =
                    AccuracyPredictor::new(PredictorConfig { encoder, ..PredictorConfig::default() });
                let project = |s: &AccuracySample| title_view(s, use_metadata);
                let train: Vec<AccuracySample> = dataset.train().iter().map(project).collect();
                predictor.fit_regression(&train);
                dataset.test().iter().map(|s| predictor.select(&project(s).first_page_text)).collect()
            }
            ModelZooEntry::SvcFormatProducer
            | ModelZooEntry::SvcFormat
            | ModelZooEntry::SvcYearProducer
            | ModelZooEntry::SvcPublisherCategory => self.evaluate_svc(dataset),
            ModelZooEntry::BleuMaximal => dataset.test().iter().map(|s| s.best_parser()).collect(),
            ModelZooEntry::BleuMinimal => dataset
                .test()
                .iter()
                .map(|s| {
                    let mut worst = 0;
                    for (i, v) in s.targets.iter().enumerate() {
                        if *v < s.targets[worst] {
                            worst = i;
                        }
                    }
                    ParserKind::ALL[worst]
                })
                .collect(),
            ModelZooEntry::RandomSelection => {
                let mut rng = StdRng::seed_from_u64(seed);
                dataset
                    .test()
                    .iter()
                    .map(|_| ParserKind::ALL[rng.gen_range(0..ParserKind::ALL.len())])
                    .collect()
            }
        };
        score_selections(self.name(), dataset.test(), &selections, evaluations)
    }

    fn evaluate_svc(&self, dataset: &AccuracyDataset) -> Vec<ParserKind> {
        let slice = |s: &AccuracySample| svc_features(s, self);
        let xs: Vec<Vec<f64>> = dataset.train().iter().map(&slice).collect();
        let labels: Vec<usize> = dataset.train().iter().map(|s| s.best_parser_index()).collect();
        if xs.is_empty() {
            return dataset.test().iter().map(|_| ParserKind::PyMuPdf).collect();
        }
        let mut svc = LinearSvc::new(xs[0].len(), ParserKind::ALL.len());
        svc.fit(&xs, &labels, 300, 0.3, 1e-3);
        dataset.test().iter().map(|s| ParserKind::ALL[svc.predict(&slice(s))]).collect()
    }
}

/// Feature subsets for the SVC rows. Metadata layout (see
/// `DocMetadata::feature_vector`): publisher 0–5, domain 6–13, producer
/// 14–20, format 21–25, year 26.
fn svc_features(sample: &AccuracySample, entry: &ModelZooEntry) -> Vec<f64> {
    let m = &sample.metadata_features;
    match entry {
        ModelZooEntry::SvcFormatProducer => [&m[21..26], &m[14..21]].concat(),
        ModelZooEntry::SvcFormat => m[21..26].to_vec(),
        ModelZooEntry::SvcYearProducer => {
            let mut f = m[14..21].to_vec();
            f.push(m[26]);
            f
        }
        ModelZooEntry::SvcPublisherCategory => [&m[0..6], &m[6..14]].concat(),
        _ => m.clone(),
    }
}

/// Build the text view the CLS II rows see: title (optionally with a textual
/// rendering of the metadata) instead of page text.
fn title_view(sample: &AccuracySample, with_metadata: bool) -> AccuracySample {
    let mut text = sample.title.clone();
    if with_metadata {
        let m = &sample.metadata_features;
        text.push_str(&format!(
            " [meta pub{} dom{} prod{} fmt{} y{:.2}]",
            m[0..6].iter().position(|&x| x > 0.5).unwrap_or(9),
            m[6..14].iter().position(|&x| x > 0.5).unwrap_or(9),
            m[14..21].iter().position(|&x| x > 0.5).unwrap_or(9),
            m[21..26].iter().position(|&x| x > 0.5).unwrap_or(9),
            m[26]
        ));
    }
    AccuracySample { first_page_text: text, ..sample.clone() }
}

/// Score a list of selections against the achieved per-parser quality.
fn score_selections(
    name: &str,
    samples: &[AccuracySample],
    selections: &[ParserKind],
    evaluations: &[DocumentEvaluation],
) -> Table4Row {
    let mut bleu = 0.0;
    let mut rouge = 0.0;
    let mut car = 0.0;
    let mut correct = 0usize;
    let n = samples.len().max(1) as f64;
    for (sample, &selected) in samples.iter().zip(selections) {
        bleu += sample.target_for(selected);
        if selected == sample.best_parser() {
            correct += 1;
        }
        if let Some(eval) = evaluations.iter().find(|e| e.doc_id.0 == sample.doc_id) {
            if let Some(p) = eval.for_parser(selected) {
                rouge += p.report.rouge;
                car += p.report.car;
            }
        }
    }
    Table4Row {
        name: name.to_string(),
        bleu: bleu / n,
        rouge: rouge / n,
        car: car / n,
        selection_accuracy: correct as f64 / n,
    }
}

/// Evaluate every Table 4 row.
pub fn evaluate_all(
    dataset: &AccuracyDataset,
    evaluations: &[DocumentEvaluation],
    preferences: &[ParserPreference],
    seed: u64,
) -> Vec<Table4Row> {
    ModelZooEntry::ALL.iter().map(|entry| entry.evaluate(dataset, evaluations, preferences, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsersim::evaluate::evaluate_corpus;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn fixture() -> (AccuracyDataset, Vec<DocumentEvaluation>) {
        let docs = DocumentGenerator::new(GeneratorConfig {
            n_documents: 24,
            seed: 71,
            min_pages: 1,
            max_pages: 2,
            scanned_fraction: 0.3,
            ..Default::default()
        })
        .generate_many(24);
        let evaluations = evaluate_corpus(&docs, 5);
        let dataset = AccuracyDataset::from_evaluations(&docs, &evaluations, 0.67);
        (dataset, evaluations)
    }

    #[test]
    fn reference_rows_bound_every_model() {
        let (dataset, evaluations) = fixture();
        let oracle = ModelZooEntry::BleuMaximal.evaluate(&dataset, &evaluations, &[], 1);
        let minimal = ModelZooEntry::BleuMinimal.evaluate(&dataset, &evaluations, &[], 1);
        let random = ModelZooEntry::RandomSelection.evaluate(&dataset, &evaluations, &[], 1);
        let scibert = ModelZooEntry::TextSciBert.evaluate(&dataset, &evaluations, &[], 1);
        assert!(oracle.bleu >= scibert.bleu - 1e-9);
        assert!(oracle.bleu >= random.bleu - 1e-9);
        assert!(minimal.bleu <= random.bleu + 1e-9);
        assert!(minimal.bleu <= scibert.bleu + 1e-9);
        assert!((oracle.selection_accuracy - 1.0).abs() < 1e-9);
        assert_eq!(minimal.name, "BLEU-minimal selection");
    }

    #[test]
    fn svc_rows_produce_valid_selections() {
        let (dataset, evaluations) = fixture();
        for entry in [
            ModelZooEntry::SvcFormatProducer,
            ModelZooEntry::SvcFormat,
            ModelZooEntry::SvcYearProducer,
            ModelZooEntry::SvcPublisherCategory,
        ] {
            let row = entry.evaluate(&dataset, &evaluations, &[], 2);
            assert!((0.0..=1.0).contains(&row.bleu), "{}: bleu {}", row.name, row.bleu);
            assert!((0.0..=1.0).contains(&row.selection_accuracy));
            assert!(!row.name.is_empty());
        }
    }

    #[test]
    fn text_model_beats_random_selection() {
        let (dataset, evaluations) = fixture();
        let text = ModelZooEntry::TextSciBert.evaluate(&dataset, &evaluations, &[], 3);
        let random = ModelZooEntry::RandomSelection.evaluate(&dataset, &evaluations, &[], 3);
        assert!(
            text.bleu >= random.bleu - 0.02,
            "text model ({}) should not trail random ({}) materially",
            text.bleu,
            random.bleu
        );
    }

    #[test]
    fn all_rows_have_distinct_names() {
        let mut names: Vec<&str> = ModelZooEntry::ALL.iter().map(|e| e.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
