//! Accepted tokens (AT): the goodput-oriented metric devised in the paper.
//!
//! The paper defines accepted tokens as "the relative frequency of tokens
//! that exceed a critical BLEU threshold": a document's tokens are *accepted*
//! if the document-level parse quality clears the acceptance threshold
//! derived from the user-preference study. AT is therefore a token-weighted
//! acceptance rate, and accepted-tokens-per-resource-unit is the paper's
//! notion of goodput.

use crate::tokenize::count_words;

/// Default BLEU threshold above which a document's tokens count as accepted.
///
/// Chosen so that strong parses (BLEU in the 40–50 % range reported in the
/// paper's tables) are accepted while garbled parses are not.
pub const DEFAULT_ACCEPTANCE_THRESHOLD: f64 = 0.30;

/// Accumulator for the accepted-token rate over a document collection.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct AcceptedTokens {
    /// Number of tokens in documents whose score cleared the threshold.
    pub accepted: u64,
    /// Total number of tokens produced across all documents.
    pub total: u64,
}

impl AcceptedTokens {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one parsed document given its token count and quality score.
    pub fn record(&mut self, token_count: usize, score: f64, threshold: f64) {
        self.total += token_count as u64;
        if score >= threshold {
            self.accepted += token_count as u64;
        }
    }

    /// Record a document by counting tokens in its parsed text.
    pub fn record_text(&mut self, text: &str, score: f64, threshold: f64) {
        self.record(count_words(text), score, threshold);
    }

    /// The accepted-token rate in `[0, 1]`; `0.0` if nothing was recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.accepted as f64 / self.total as f64
        }
    }

    /// Merge another accumulator into this one (for per-node aggregation).
    pub fn merge(&mut self, other: &AcceptedTokens) {
        self.accepted += other.accepted;
        self.total += other.total;
    }

    /// Goodput: accepted tokens per unit of resource time.
    ///
    /// Returns `None` when `resource_seconds` is not strictly positive.
    pub fn goodput(&self, resource_seconds: f64) -> Option<f64> {
        if resource_seconds > 0.0 {
            Some(self.accepted as f64 / resource_seconds)
        } else {
            None
        }
    }
}

/// One-shot accepted-token rate over `(parsed_text, score)` pairs with the
/// default threshold.
pub fn accepted_token_rate<'a, I>(docs: I) -> f64
where
    I: IntoIterator<Item = (&'a str, f64)>,
{
    let mut acc = AcceptedTokens::new();
    for (text, score) in docs {
        acc.record_text(text, score, DEFAULT_ACCEPTANCE_THRESHOLD);
    }
    acc.rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_rate_is_zero() {
        assert_eq!(AcceptedTokens::new().rate(), 0.0);
    }

    #[test]
    fn all_accepted() {
        let mut acc = AcceptedTokens::new();
        acc.record(100, 0.9, 0.3);
        acc.record(50, 0.5, 0.3);
        assert_eq!(acc.rate(), 1.0);
        assert_eq!(acc.total, 150);
    }

    #[test]
    fn token_weighting_matters() {
        let mut acc = AcceptedTokens::new();
        acc.record(900, 0.9, 0.3); // accepted, long doc
        acc.record(100, 0.1, 0.3); // rejected, short doc
        assert!((acc.rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let mut acc = AcceptedTokens::new();
        acc.record(10, 0.3, 0.3);
        assert_eq!(acc.rate(), 1.0);
    }

    #[test]
    fn record_text_counts_words() {
        let mut acc = AcceptedTokens::new();
        acc.record_text("five words are counted here", 1.0, 0.5);
        assert_eq!(acc.total, 5);
        assert_eq!(acc.accepted, 5);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = AcceptedTokens::new();
        a.record(10, 1.0, 0.5);
        let mut b = AcceptedTokens::new();
        b.record(30, 0.0, 0.5);
        a.merge(&b);
        assert_eq!(a.total, 40);
        assert_eq!(a.accepted, 10);
        assert!((a.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn goodput_requires_positive_time() {
        let mut a = AcceptedTokens::new();
        a.record(100, 1.0, 0.5);
        assert_eq!(a.goodput(0.0), None);
        assert_eq!(a.goodput(-1.0), None);
        assert!((a.goodput(4.0).unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn one_shot_helper() {
        let docs = [("good parse of the document text", 0.8), ("bad", 0.0)];
        let rate = accepted_token_rate(docs.iter().map(|(t, s)| (*t, *s)));
        assert!(rate > 0.5 && rate < 1.0);
    }
}
