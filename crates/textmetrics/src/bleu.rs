//! BLEU (Bilingual Evaluation Understudy) with smoothing.
//!
//! The paper uses BLEU as its primary word-level accuracy proxy and as the
//! regression target for the parser-selection model. We implement the
//! standard BLEU-4 with modified n-gram precision, brevity penalty, and
//! add-ε smoothing so short or partially-overlapping texts do not collapse to
//! exactly zero (which would make the regression target degenerate).

use crate::ngram::NgramCounts;
use crate::tokenize::tokenize_words;

/// Configuration for BLEU computation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BleuConfig {
    /// Maximum n-gram order (the classic metric uses 4).
    pub max_order: usize,
    /// Additive smoothing constant applied to n-gram precisions with zero
    /// matches (Lin & Och smoothing variant).
    pub smoothing: f64,
}

impl Default for BleuConfig {
    fn default() -> Self {
        BleuConfig { max_order: 4, smoothing: 1e-2 }
    }
}

/// The decomposition of a BLEU score.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BleuScore {
    /// Final score in `[0, 1]`.
    pub score: f64,
    /// Modified n-gram precisions, index 0 = unigram.
    pub precisions: Vec<f64>,
    /// Brevity penalty in `(0, 1]`.
    pub brevity_penalty: f64,
    /// Candidate length in tokens.
    pub candidate_len: usize,
    /// Reference length in tokens.
    pub reference_len: usize,
}

/// Compute BLEU for a single candidate/reference pair with the given config.
pub fn sentence_bleu_with(candidate: &str, reference: &str, config: BleuConfig) -> BleuScore {
    let cand = tokenize_words(candidate);
    let refr = tokenize_words(reference);
    bleu_from_tokens(&cand, &refr, config)
}

/// Compute BLEU-4 with default smoothing for a candidate/reference pair.
///
/// ```
/// use textmetrics::bleu::sentence_bleu;
/// let r = "the cat sat on the mat";
/// assert!(sentence_bleu(r, r) > 0.99);
/// assert!(sentence_bleu("completely unrelated words here", r) < 0.05);
/// ```
pub fn sentence_bleu(candidate: &str, reference: &str) -> f64 {
    sentence_bleu_with(candidate, reference, BleuConfig::default()).score
}

/// Corpus-level BLEU: n-gram statistics are pooled over all pairs before the
/// geometric mean is taken (the standard corpus BLEU definition).
///
/// Returns a score of `0.0` for an empty corpus.
pub fn corpus_bleu(pairs: &[(String, String)]) -> f64 {
    corpus_bleu_with(pairs, BleuConfig::default()).score
}

/// Corpus-level BLEU with an explicit configuration.
pub fn corpus_bleu_with(pairs: &[(String, String)], config: BleuConfig) -> BleuScore {
    let max_order = config.max_order.max(1);
    if pairs.is_empty() {
        return BleuScore {
            score: 0.0,
            precisions: vec![0.0; max_order],
            brevity_penalty: 1.0,
            candidate_len: 0,
            reference_len: 0,
        };
    }
    let mut matches = vec![0usize; max_order];
    let mut totals = vec![0usize; max_order];
    let mut cand_len = 0usize;
    let mut ref_len = 0usize;
    for (candidate, reference) in pairs {
        let cand = tokenize_words(candidate);
        let refr = tokenize_words(reference);
        cand_len += cand.len();
        ref_len += refr.len();
        for order in 1..=max_order {
            let c = NgramCounts::from_tokens(&cand, order);
            let r = NgramCounts::from_tokens(&refr, order);
            matches[order - 1] += c.clipped_overlap(&r);
            totals[order - 1] += c.total();
        }
    }
    finish_bleu(&matches, &totals, cand_len, ref_len, config)
}

fn bleu_from_tokens(cand: &[String], refr: &[String], config: BleuConfig) -> BleuScore {
    let max_order = config.max_order.max(1);
    let mut matches = vec![0usize; max_order];
    let mut totals = vec![0usize; max_order];
    for order in 1..=max_order {
        let c = NgramCounts::from_tokens(cand, order);
        let r = NgramCounts::from_tokens(refr, order);
        matches[order - 1] = c.clipped_overlap(&r);
        totals[order - 1] = c.total();
    }
    finish_bleu(&matches, &totals, cand.len(), refr.len(), config)
}

fn finish_bleu(
    matches: &[usize],
    totals: &[usize],
    cand_len: usize,
    ref_len: usize,
    config: BleuConfig,
) -> BleuScore {
    let max_order = config.max_order.max(1);
    if cand_len == 0 || ref_len == 0 {
        let score = if cand_len == 0 && ref_len == 0 { 1.0 } else { 0.0 };
        return BleuScore {
            score,
            precisions: vec![score; max_order],
            brevity_penalty: 1.0,
            candidate_len: cand_len,
            reference_len: ref_len,
        };
    }
    let mut precisions = Vec::with_capacity(max_order);
    let mut log_sum = 0.0f64;
    let mut usable_orders = 0usize;
    for order in 0..max_order {
        if totals[order] == 0 {
            // Candidate shorter than the order; skip rather than zeroing out.
            precisions.push(0.0);
            continue;
        }
        let p = if matches[order] == 0 {
            config.smoothing / totals[order] as f64
        } else {
            matches[order] as f64 / totals[order] as f64
        };
        precisions.push(p);
        log_sum += p.max(f64::MIN_POSITIVE).ln();
        usable_orders += 1;
    }
    let geo_mean = if usable_orders == 0 { 0.0 } else { (log_sum / usable_orders as f64).exp() };
    let brevity_penalty =
        if cand_len >= ref_len { 1.0 } else { (1.0 - ref_len as f64 / cand_len as f64).exp() };
    BleuScore {
        score: (geo_mean * brevity_penalty).clamp(0.0, 1.0),
        precisions,
        brevity_penalty,
        candidate_len: cand_len,
        reference_len: ref_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_scores_one() {
        let t = "adaptive parsing routes documents to the cheapest adequate parser";
        let s = sentence_bleu_with(t, t, BleuConfig::default());
        assert!(s.score > 0.999, "score = {}", s.score);
        assert_eq!(s.brevity_penalty, 1.0);
        for p in &s.precisions {
            assert!(*p > 0.999);
        }
    }

    #[test]
    fn disjoint_text_scores_near_zero() {
        let s = sentence_bleu("alpha beta gamma delta epsilon", "one two three four five");
        assert!(s < 0.05, "score = {s}");
    }

    #[test]
    fn score_is_bounded() {
        let cases = [
            ("", ""),
            ("", "a b c"),
            ("a b c", ""),
            ("a", "a"),
            ("a b", "a b c d e f g h"),
            ("a b c d e f g h", "a b"),
        ];
        for (c, r) in cases {
            let s = sentence_bleu(c, r);
            assert!((0.0..=1.0).contains(&s), "({c:?},{r:?}) -> {s}");
        }
    }

    #[test]
    fn empty_candidate_with_nonempty_reference_is_zero() {
        assert_eq!(sentence_bleu("", "some reference text"), 0.0);
        assert_eq!(sentence_bleu("", ""), 1.0);
    }

    #[test]
    fn brevity_penalty_punishes_truncation() {
        let reference = "one two three four five six seven eight nine ten eleven twelve";
        let truncated = "one two three four";
        let full = reference;
        assert!(sentence_bleu(truncated, reference) < sentence_bleu(full, reference));
    }

    #[test]
    fn word_scrambling_reduces_score() {
        // The paper's BLEU/ROUGE critique: scrambled text still gets non-zero
        // scores but must score lower than the faithful text.
        let reference = "the gravitational force between two masses is directly proportional \
                         to the product of their masses";
        let scrambled = "the gravitational force masses two between is proportional directly \
                         product the to of masses their";
        let faithful = reference;
        let s_scrambled = sentence_bleu(scrambled, reference);
        let s_faithful = sentence_bleu(faithful, reference);
        assert!(s_scrambled < s_faithful);
        assert!(s_scrambled > 0.0);
    }

    #[test]
    fn corpus_bleu_pools_statistics() {
        let pairs = vec![
            ("the cat sat on the mat".to_string(), "the cat sat on the mat".to_string()),
            ("a dog barked loudly outside".to_string(), "a dog barked loudly outside".to_string()),
        ];
        assert!(corpus_bleu(&pairs) > 0.99);
        assert_eq!(corpus_bleu(&[]), 0.0);
    }

    #[test]
    fn corpus_bleu_between_best_and_worst_pair() {
        let good = ("exact match text here".to_string(), "exact match text here".to_string());
        let bad = ("totally different words".to_string(), "reference content unrelated".to_string());
        let corpus = corpus_bleu(&[good.clone(), bad.clone()]);
        let g = sentence_bleu(&good.0, &good.1);
        let b = sentence_bleu(&bad.0, &bad.1);
        assert!(corpus <= g + 1e-9);
        assert!(corpus + 1e-9 >= b);
    }

    #[test]
    fn custom_order_config() {
        let cfg = BleuConfig { max_order: 1, smoothing: 0.0 };
        let s = sentence_bleu_with("b a", "a b", cfg);
        assert!((s.score - 1.0).abs() < 1e-9, "unigram BLEU ignores order");
    }
}
