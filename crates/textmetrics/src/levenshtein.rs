//! Character-level edit distance and the character accuracy rate (CAR).
//!
//! The paper reports CAR as one of its accuracy columns in Tables 1–3. CAR is
//! defined here as `1 − d(candidate, reference) / max(|candidate|, |reference|)`
//! where `d` is the Levenshtein distance over whitespace-normalized character
//! sequences, clamped to `[0, 1]`.
//!
//! Full Levenshtein over multi-page documents is quadratic and, as the paper
//! notes, "computationally prohibitive for ultra-long text sequences". We
//! therefore provide a banded variant ([`edit_distance_banded`]) that bounds
//! the work per character pair and is what [`char_accuracy_rate`] uses for
//! long inputs.

use crate::tokenize::normalize_whitespace;

/// Threshold (in characters) above which [`char_accuracy_rate`] switches from
/// the exact distance to the banded approximation.
pub const BANDED_THRESHOLD: usize = 4_000;

/// Exact Levenshtein distance between two character slices.
///
/// Memory usage is `O(min(|a|, |b|))`.
pub fn edit_distance_chars(a: &[char], b: &[char]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Exact Levenshtein distance between two strings (raw characters, no
/// normalization).
///
/// ```
/// use textmetrics::levenshtein::edit_distance;
/// assert_eq!(edit_distance("kitten", "sitting"), 3);
/// assert_eq!(edit_distance("hyperthyroidism", "hypothyroidism"), 2);
/// ```
pub fn edit_distance(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    edit_distance_chars(&ac, &bc)
}

/// Banded (Ukkonen-style) edit distance: only cells within `band` of the
/// diagonal are computed; the result is an upper bound on the true distance
/// and exact whenever the true distance is at most `band`.
pub fn edit_distance_banded(a: &[char], b: &[char], band: usize) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    if n.abs_diff(m) > band {
        // The distance is at least the length difference; the band cannot
        // capture it exactly, so return the pessimistic bound.
        return n.max(m);
    }
    let inf = n + m + 1;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    for (j, slot) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *slot = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        curr.iter_mut().for_each(|x| *x = inf);
        if lo == 1 {
            curr[0] = i;
        }
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = prev[j - 1].saturating_add(cost);
            best = best.min(prev[j].saturating_add(1));
            best = best.min(curr[j - 1].saturating_add(1));
            curr[j] = best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].min(n.max(m))
}

/// Normalized similarity in `[0, 1]`: `1 − d / max(|a|, |b|)` over raw
/// characters. Two empty strings are considered identical (similarity 1).
pub fn normalized_similarity(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let denom = ac.len().max(bc.len());
    if denom == 0 {
        return 1.0;
    }
    let d = edit_distance_chars(&ac, &bc);
    1.0 - d as f64 / denom as f64
}

/// Character accuracy rate between parser output and ground truth.
///
/// Both inputs are whitespace-normalized first. For inputs longer than
/// [`BANDED_THRESHOLD`] characters, a banded distance with a band of 20 % of
/// the reference length is used; this matches how OCR evaluation toolkits
/// bound their alignment cost, and errs on the pessimistic side for heavily
/// shuffled text.
///
/// Returns a value in `[0, 1]`.
pub fn char_accuracy_rate(candidate: &str, reference: &str) -> f64 {
    let cand: Vec<char> = normalize_whitespace(candidate).chars().collect();
    let refr: Vec<char> = normalize_whitespace(reference).chars().collect();
    let denom = cand.len().max(refr.len());
    if denom == 0 {
        return 1.0;
    }
    let d = if denom > BANDED_THRESHOLD {
        let band = (refr.len() / 5).max(64);
        edit_distance_banded(&cand, &refr, band)
    } else {
        edit_distance_chars(&cand, &refr)
    };
    (1.0 - d as f64 / denom as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("flaw", "lawn"), 2);
    }

    #[test]
    fn paper_example_hyperthyroidism() {
        // The paper's motivating example: distance 2, similarity ~86.7%.
        let d = edit_distance("hyperthyroidism", "hypothyroidism");
        assert_eq!(d, 2);
        let sim = normalized_similarity("hyperthyroidism", "hypothyroidism");
        assert!((sim - (1.0 - 2.0 / 15.0)).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("abcdef", "azced"), ("xy", "yx"), ("", "q")] {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
        }
    }

    #[test]
    fn banded_matches_exact_when_band_large() {
        let a: Vec<char> = "the quick brown fox jumps".chars().collect();
        let b: Vec<char> = "the quikc brown fox jmps over".chars().collect();
        let exact = edit_distance_chars(&a, &b);
        let banded = edit_distance_banded(&a, &b, a.len() + b.len());
        assert_eq!(exact, banded);
    }

    #[test]
    fn banded_is_upper_bound() {
        let a: Vec<char> = "abcdefghijabcdefghij".chars().collect();
        let b: Vec<char> = "abcdefghijzzzzefghij".chars().collect();
        let exact = edit_distance_chars(&a, &b);
        for band in [1usize, 2, 4, 8, 40] {
            assert!(edit_distance_banded(&a, &b, band) >= exact);
        }
    }

    #[test]
    fn car_identical_is_one_and_disjoint_low() {
        assert_eq!(char_accuracy_rate("same text", "same  text"), 1.0);
        assert!(char_accuracy_rate("aaaaaaa", "zzzzzzz") < 0.01);
        assert_eq!(char_accuracy_rate("", ""), 1.0);
        assert_eq!(char_accuracy_rate("", "abc"), 0.0);
    }

    #[test]
    fn car_long_input_uses_banded_and_stays_bounded() {
        let reference: String = "scientific text about proteins and enzymes ".repeat(200);
        let mut candidate = reference.clone();
        candidate.insert_str(100, "XYZ");
        let car = char_accuracy_rate(&candidate, &reference);
        assert!(car > 0.99, "car = {car}");
        assert!(car <= 1.0);
    }
}
