//! Text-quality metrics for evaluating PDF parser output.
//!
//! This crate implements every metric the AdaParse paper relies on to compare
//! parser output against ground-truth text:
//!
//! * word-level metrics: [`bleu`] (Bilingual Evaluation Understudy) and
//!   [`rouge`] (Recall-Oriented Understudy for Gisting Evaluation),
//! * character-level metrics: [`levenshtein`] edit distance and the derived
//!   character accuracy rate (CAR),
//! * preference-derived metrics: [`winrate`] (normalized win rate from
//!   pairwise human preferences) and [`accepted`] tokens (fraction of tokens
//!   coming from documents whose score clears an acceptance threshold),
//! * summary [`stats`] used throughout the evaluation (Pearson correlation,
//!   coefficient of determination, simple significance tests).
//!
//! # Example
//!
//! ```
//! use textmetrics::{bleu::sentence_bleu, rouge::rouge_l, levenshtein::char_accuracy_rate};
//!
//! let reference = "the gravitational force between two masses is proportional to their product";
//! let candidate = "the gravitational force between two masses is proportional to their product";
//! assert!(sentence_bleu(candidate, reference) > 0.99);
//! assert!(rouge_l(candidate, reference).f1 > 0.99);
//! assert!(char_accuracy_rate(candidate, reference) > 0.99);
//! ```

pub mod accepted;
pub mod bleu;
pub mod levenshtein;
pub mod ngram;
pub mod rouge;
pub mod stats;
pub mod tokenize;
pub mod winrate;

pub use accepted::{accepted_token_rate, AcceptedTokens};
pub use bleu::{corpus_bleu, sentence_bleu, BleuConfig, BleuScore};
pub use levenshtein::{char_accuracy_rate, edit_distance, normalized_similarity};
pub use rouge::{rouge_l, rouge_n, RougeScore};
pub use stats::{mean, pearson, r_squared, std_dev, Summary};
pub use tokenize::{normalize_whitespace, tokenize_chars, tokenize_words};
pub use winrate::{PreferenceOutcome, WinRateTable};

/// A bundle of the document-level quality metrics reported in the paper's
/// Tables 1–3 for a single (candidate, reference) pair.
///
/// All values are fractions in `[0, 1]`; the bench harness multiplies by 100
/// to report percentages like the paper.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QualityReport {
    /// Smoothed BLEU-4 of the candidate against the reference.
    pub bleu: f64,
    /// ROUGE-L F1 of the candidate against the reference.
    pub rouge: f64,
    /// Character accuracy rate (1 − normalized edit distance).
    pub car: f64,
    /// Fraction of reference pages covered by the candidate (provided by the
    /// caller; metrics in this crate operate on flat text).
    pub coverage: f64,
}

impl QualityReport {
    /// Compute BLEU, ROUGE-L and CAR for a candidate/reference pair.
    ///
    /// `coverage` is supplied by the caller because page attribution is a
    /// property of the document model, not of flat text.
    pub fn compute(candidate: &str, reference: &str, coverage: f64) -> Self {
        QualityReport {
            bleu: bleu::sentence_bleu(candidate, reference),
            rouge: rouge::rouge_l(candidate, reference).f1,
            car: levenshtein::char_accuracy_rate(candidate, reference),
            coverage: coverage.clamp(0.0, 1.0),
        }
    }

    /// Average two reports element-wise (used when aggregating pages).
    pub fn merge(&self, other: &QualityReport) -> QualityReport {
        QualityReport {
            bleu: 0.5 * (self.bleu + other.bleu),
            rouge: 0.5 * (self.rouge + other.rouge),
            car: 0.5 * (self.car + other.car),
            coverage: 0.5 * (self.coverage + other.coverage),
        }
    }
}

/// Aggregate a slice of [`QualityReport`]s by arithmetic mean.
///
/// Returns `None` for an empty slice.
pub fn aggregate_reports(reports: &[QualityReport]) -> Option<QualityReport> {
    if reports.is_empty() {
        return None;
    }
    let n = reports.len() as f64;
    Some(QualityReport {
        bleu: reports.iter().map(|r| r.bleu).sum::<f64>() / n,
        rouge: reports.iter().map(|r| r.rouge).sum::<f64>() / n,
        car: reports.iter().map(|r| r.car).sum::<f64>() / n,
        coverage: reports.iter().map(|r| r.coverage).sum::<f64>() / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_report_identical_text_is_near_one() {
        let text = "parsing scientific documents is a systems problem with many moving parts";
        let r = QualityReport::compute(text, text, 1.0);
        assert!(r.bleu > 0.99, "bleu = {}", r.bleu);
        assert!(r.rouge > 0.99, "rouge = {}", r.rouge);
        assert!(r.car > 0.99, "car = {}", r.car);
        assert_eq!(r.coverage, 1.0);
    }

    #[test]
    fn quality_report_disjoint_text_is_near_zero() {
        let a = "alpha beta gamma delta epsilon zeta";
        let b = "one two three four five six seven";
        let r = QualityReport::compute(a, b, 0.5);
        assert!(r.bleu < 0.05);
        assert!(r.rouge < 0.05);
        assert!(r.car < 0.6);
    }

    #[test]
    fn aggregate_reports_means_fields() {
        let a = QualityReport { bleu: 0.2, rouge: 0.4, car: 0.6, coverage: 0.8 };
        let b = QualityReport { bleu: 0.4, rouge: 0.6, car: 0.8, coverage: 1.0 };
        let m = aggregate_reports(&[a, b]).unwrap();
        assert!((m.bleu - 0.3).abs() < 1e-12);
        assert!((m.rouge - 0.5).abs() < 1e-12);
        assert!((m.car - 0.7).abs() < 1e-12);
        assert!((m.coverage - 0.9).abs() < 1e-12);
    }

    #[test]
    fn aggregate_reports_empty_is_none() {
        assert!(aggregate_reports(&[]).is_none());
    }

    #[test]
    fn coverage_is_clamped() {
        let r = QualityReport::compute("a", "a", 1.7);
        assert_eq!(r.coverage, 1.0);
        let r = QualityReport::compute("a", "a", -0.3);
        assert_eq!(r.coverage, 0.0);
    }

    #[test]
    fn merge_averages() {
        let a = QualityReport { bleu: 1.0, rouge: 1.0, car: 1.0, coverage: 1.0 };
        let b = QualityReport { bleu: 0.0, rouge: 0.0, car: 0.0, coverage: 0.0 };
        let m = a.merge(&b);
        assert!((m.bleu - 0.5).abs() < 1e-12);
    }
}
