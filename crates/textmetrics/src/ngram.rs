//! N-gram counting utilities shared by BLEU and ROUGE.

use std::collections::HashMap;

/// A multiset of n-grams of a fixed order over word tokens.
///
/// N-grams are stored as joined strings (tokens separated by `'\u{1}'`, a
/// character that cannot appear in a token) to avoid nested allocations.
#[derive(Debug, Clone, Default)]
pub struct NgramCounts {
    order: usize,
    counts: HashMap<String, usize>,
    total: usize,
}

impl NgramCounts {
    /// Count the n-grams of the given `order` in `tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`.
    pub fn from_tokens(tokens: &[String], order: usize) -> Self {
        assert!(order > 0, "n-gram order must be positive");
        let mut counts = HashMap::new();
        let mut total = 0usize;
        if tokens.len() >= order {
            for window in tokens.windows(order) {
                let key = window.join("\u{1}");
                *counts.entry(key).or_insert(0) += 1;
                total += 1;
            }
        }
        NgramCounts { order, counts, total }
    }

    /// The n-gram order of this multiset.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total number of n-grams counted (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a specific n-gram key.
    pub fn count(&self, key: &str) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Clipped overlap with another multiset: `sum_g min(self[g], other[g])`.
    ///
    /// This is the numerator of BLEU's modified n-gram precision and of
    /// ROUGE-N recall.
    pub fn clipped_overlap(&self, other: &NgramCounts) -> usize {
        // Iterate over the smaller map for efficiency.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        small.iter().map(|(k, &c)| c.min(large.get(k).copied().unwrap_or(0))).sum()
    }

    /// Iterate over `(ngram, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn unigram_counts() {
        let c = NgramCounts::from_tokens(&toks("a b a c"), 1);
        assert_eq!(c.total(), 4);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.count("a"), 2);
        assert_eq!(c.count("z"), 0);
    }

    #[test]
    fn bigram_counts() {
        let c = NgramCounts::from_tokens(&toks("a b a b"), 2);
        assert_eq!(c.total(), 3);
        assert_eq!(c.count("a\u{1}b"), 2);
        assert_eq!(c.count("b\u{1}a"), 1);
    }

    #[test]
    fn order_longer_than_sequence_is_empty() {
        let c = NgramCounts::from_tokens(&toks("a b"), 3);
        assert_eq!(c.total(), 0);
        assert_eq!(c.distinct(), 0);
    }

    #[test]
    fn clipped_overlap_is_symmetric_and_clipped() {
        let a = NgramCounts::from_tokens(&toks("the the the cat"), 1);
        let b = NgramCounts::from_tokens(&toks("the cat sat"), 1);
        assert_eq!(a.clipped_overlap(&b), 2); // min(3,1) for "the" + min(1,1) for "cat"
        assert_eq!(b.clipped_overlap(&a), 2);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_panics() {
        let _ = NgramCounts::from_tokens(&toks("a"), 0);
    }
}
