//! ROUGE (Recall-Oriented Understudy for Gisting Evaluation).
//!
//! We implement ROUGE-N (n-gram recall/precision/F1) and ROUGE-L (longest
//! common subsequence). The paper reports a single "ROUGE" column in its
//! tables; we follow the common convention of reporting ROUGE-L F1 there and
//! expose ROUGE-1/2 for completeness.

use crate::ngram::NgramCounts;
use crate::tokenize::tokenize_words;

/// Precision / recall / F1 triple produced by every ROUGE variant.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RougeScore {
    /// Fraction of candidate units that appear in the reference.
    pub precision: f64,
    /// Fraction of reference units that appear in the candidate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl RougeScore {
    fn from_counts(overlap: f64, candidate_total: f64, reference_total: f64) -> Self {
        let precision = if candidate_total > 0.0 { overlap / candidate_total } else { 0.0 };
        let recall = if reference_total > 0.0 { overlap / reference_total } else { 0.0 };
        let f1 = if precision + recall > 0.0 { 2.0 * precision * recall / (precision + recall) } else { 0.0 };
        RougeScore { precision, recall, f1 }
    }

    /// Score for two empty texts (conventionally perfect).
    fn perfect() -> Self {
        RougeScore { precision: 1.0, recall: 1.0, f1: 1.0 }
    }
}

/// ROUGE-N over word tokens.
///
/// ```
/// use textmetrics::rouge::rouge_n;
/// let s = rouge_n("the cat sat", "the cat sat on the mat", 1);
/// assert!(s.recall < 1.0 && s.precision > 0.99);
/// ```
pub fn rouge_n(candidate: &str, reference: &str, order: usize) -> RougeScore {
    let cand = tokenize_words(candidate);
    let refr = tokenize_words(reference);
    if cand.is_empty() && refr.is_empty() {
        return RougeScore::perfect();
    }
    let c = NgramCounts::from_tokens(&cand, order.max(1));
    let r = NgramCounts::from_tokens(&refr, order.max(1));
    let overlap = c.clipped_overlap(&r) as f64;
    RougeScore::from_counts(overlap, c.total() as f64, r.total() as f64)
}

/// ROUGE-L over word tokens, based on the longest common subsequence.
///
/// For very long documents the quadratic LCS table is too large, so token
/// sequences are truncated to the first [`ROUGE_L_MAX_TOKENS`] tokens — the
/// same windowing approach used by summarization toolkits for long inputs.
pub fn rouge_l(candidate: &str, reference: &str) -> RougeScore {
    let mut cand = tokenize_words(candidate);
    let mut refr = tokenize_words(reference);
    if cand.is_empty() && refr.is_empty() {
        return RougeScore::perfect();
    }
    cand.truncate(ROUGE_L_MAX_TOKENS);
    refr.truncate(ROUGE_L_MAX_TOKENS);
    let lcs = lcs_length(&cand, &refr) as f64;
    RougeScore::from_counts(lcs, cand.len() as f64, refr.len() as f64)
}

/// Maximum number of tokens considered by [`rouge_l`] on each side.
pub const ROUGE_L_MAX_TOKENS: usize = 3_000;

/// Length of the longest common subsequence of two token slices.
///
/// Memory usage is `O(min(n, m))`.
pub fn lcs_length(a: &[String], b: &[String]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; short.len() + 1];
    let mut curr = vec![0usize; short.len() + 1];
    for lc in long {
        for (j, sc) in short.iter().enumerate() {
            curr[j + 1] = if lc == sc { prev[j] + 1 } else { prev[j + 1].max(curr[j]) };
        }
        std::mem::swap(&mut prev, &mut curr);
        curr[0] = 0;
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn lcs_basic() {
        assert_eq!(lcs_length(&toks("a b c d"), &toks("a c d")), 3);
        assert_eq!(lcs_length(&toks(""), &toks("a b")), 0);
        assert_eq!(lcs_length(&toks("a b"), &toks("b a")), 1);
        assert_eq!(lcs_length(&toks("x y z"), &toks("x y z")), 3);
    }

    #[test]
    fn rouge_identical_is_one() {
        let t = "recall oriented understudy for gisting evaluation";
        let s = rouge_l(t, t);
        assert!((s.f1 - 1.0).abs() < 1e-9);
        let s1 = rouge_n(t, t, 1);
        assert!((s1.f1 - 1.0).abs() < 1e-9);
        let s2 = rouge_n(t, t, 2);
        assert!((s2.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rouge_disjoint_is_zero() {
        let s = rouge_l("alpha beta gamma", "one two three");
        assert_eq!(s.f1, 0.0);
        assert_eq!(rouge_n("alpha beta", "one two", 1).f1, 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(rouge_l("", "").f1, 1.0);
        assert_eq!(rouge_l("", "text").f1, 0.0);
        assert_eq!(rouge_l("text", "").f1, 0.0);
        assert_eq!(rouge_n("", "", 2).f1, 1.0);
    }

    #[test]
    fn precision_recall_asymmetry() {
        // Candidate is a strict prefix of the reference: perfect precision,
        // partial recall.
        let s = rouge_n("the cat sat", "the cat sat on the mat", 1);
        assert!(s.precision > 0.99);
        assert!(s.recall < 0.99);
        // And swapping the arguments swaps precision and recall.
        let swapped = rouge_n("the cat sat on the mat", "the cat sat", 1);
        assert!((s.precision - swapped.recall).abs() < 1e-9);
        assert!((s.recall - swapped.precision).abs() < 1e-9);
    }

    #[test]
    fn rouge_scores_bounded() {
        let cases =
            [("a b c", "c b a"), ("a a a a", "a"), ("longer candidate text with many words", "short ref")];
        for (c, r) in cases {
            for s in [rouge_l(c, r), rouge_n(c, r, 1), rouge_n(c, r, 2)] {
                assert!((0.0..=1.0).contains(&s.precision));
                assert!((0.0..=1.0).contains(&s.recall));
                assert!((0.0..=1.0).contains(&s.f1));
            }
        }
    }

    #[test]
    fn scrambled_text_scores_high_rouge1_lower_rougel() {
        // Mirrors the paper's observation that ROUGE can over-reward
        // incoherent candidates: unigram overlap stays high but ROUGE-L drops.
        let reference = "the gravitational force between two masses is directly proportional \
                         to the product of their masses";
        let scrambled = "the gravitational force masses directly two the between proportional \
                         product is of to their masses";
        let r1 = rouge_n(scrambled, reference, 1);
        let rl = rouge_l(scrambled, reference);
        assert!(r1.f1 > 0.9, "rouge-1 stays high: {}", r1.f1);
        assert!(rl.f1 < r1.f1, "rouge-l must be lower than rouge-1");
    }

    #[test]
    fn long_input_is_truncated_not_panicking() {
        let reference = "word ".repeat(10_000);
        let candidate = "word ".repeat(9_000);
        let s = rouge_l(&candidate, &reference);
        assert!(s.f1 > 0.99);
    }
}
