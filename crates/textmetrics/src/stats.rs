//! Summary statistics used by the evaluation harness.
//!
//! The paper reports a Pearson correlation between BLEU and win rate
//! (ρ ≈ 0.47 with a vanishing p-value), R² of the accuracy-prediction
//! models, and mean metric values over document collections. This module
//! implements those statistics from scratch (no external stats crate).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; `0.0` for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Pearson correlation coefficient of two equally-long samples.
///
/// Returns `0.0` when either sample is constant or the lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0)
    }
}

/// Coefficient of determination of predictions against observations.
///
/// `R² = 1 − SS_res / SS_tot`; can be negative when predictions are worse
/// than predicting the mean. Returns `0.0` for degenerate inputs.
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> f64 {
    if predicted.len() != observed.len() || observed.len() < 2 {
        return 0.0;
    }
    let m = mean(observed);
    let ss_tot: f64 = observed.iter().map(|y| (y - m) * (y - m)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predicted.iter().zip(observed.iter()).map(|(p, y)| (y - p) * (y - p)).sum();
    1.0 - ss_res / ss_tot
}

/// Two-sided p-value for the null hypothesis ρ = 0, using the t-statistic
/// `t = r·sqrt((n−2)/(1−r²))` and a normal approximation to the t
/// distribution (adequate for the large n used in the paper's study).
pub fn correlation_p_value(r: f64, n: usize) -> f64 {
    if n < 3 || r.abs() >= 1.0 {
        return if r.abs() >= 1.0 && n >= 3 { 0.0 } else { 1.0 };
    }
    let dof = (n - 2) as f64;
    let t = r * (dof / (1.0 - r * r)).sqrt();
    2.0 * (1.0 - standard_normal_cdf(t.abs()))
}

/// Standard normal cumulative distribution function via the Abramowitz &
/// Stegun erf approximation (absolute error < 1.5e-7).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Simple ordinary-least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept)`, or `(0, mean(y))` for degenerate inputs.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    if x.len() != y.len() || x.len() < 2 {
        return (0.0, mean(y));
    }
    let mx = mean(x);
    let my = mean(y);
    let mut num = 0.0;
    let mut den = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        num += (a - mx) * (b - my);
        den += (a - mx) * (a - mx);
    }
    if den <= 0.0 {
        (0.0, my)
    } else {
        let slope = num / den;
        (slope, my - slope * mx)
    }
}

/// Percentile via linear interpolation; `p` in `[0, 100]`.
///
/// Returns `None` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = idx - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// A compact five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns a zeroed summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary { count: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary { count: values.len(), mean: mean(values), std_dev: std_dev(values), min, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert!((variance(&[2.0, 4.0, 6.0]) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(pearson(&x, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn r_squared_behaviour() {
        let obs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        let mean_pred = [3.0; 5];
        assert!(r_squared(&mean_pred, &obs).abs() < 1e-12);
        let bad = [10.0, -3.0, 8.0, 0.0, 99.0];
        assert!(r_squared(&bad, &obs) < 0.0);
    }

    #[test]
    fn p_value_decreases_with_sample_size() {
        let p_small = correlation_p_value(0.47, 10);
        let p_large = correlation_p_value(0.47, 2000);
        assert!(p_large < p_small);
        assert!(p_large < 1e-6);
        assert_eq!(correlation_p_value(0.9, 2), 1.0);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(standard_normal_cdf(3.0) > 0.998);
        assert!(standard_normal_cdf(-3.0) < 0.002);
        assert!((erf(0.0)).abs() < 1e-6);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        let (s0, i0) = linear_fit(&[1.0, 1.0], &[2.0, 4.0]);
        assert_eq!(s0, 0.0);
        assert_eq!(i0, 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }
}
