//! Tokenization and text normalization primitives shared by all metrics.
//!
//! The paper's metrics (BLEU, ROUGE) operate on whitespace-delimited,
//! lower-cased word tokens; character-level metrics (CAR) operate on the raw
//! character sequence after whitespace normalization.

/// Collapse any run of whitespace into a single ASCII space and trim the ends.
///
/// Parser output frequently contains injected whitespace (one of the failure
/// modes in the paper's Figure 1); normalizing before character-level
/// comparison keeps CAR from being dominated by layout artifacts.
///
/// ```
/// use textmetrics::tokenize::normalize_whitespace;
/// assert_eq!(normalize_whitespace("a  b\n\nc\t d "), "a b c d");
/// ```
pub fn normalize_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_was_space = true; // also trims leading whitespace
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.push(ch);
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split text into lower-cased word tokens.
///
/// A token is a maximal run of alphanumeric characters; punctuation is
/// dropped. This mirrors the simple tokenizers used by BLEU/ROUGE reference
/// implementations and keeps the metric insensitive to markdown artifacts
/// (`#`, `*`) that differ between parsers.
///
/// ```
/// use textmetrics::tokenize::tokenize_words;
/// assert_eq!(tokenize_words("The pH value, 7.4!"), vec!["the", "ph", "value", "7", "4"]);
/// ```
pub fn tokenize_words(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Split text into case-preserving word tokens (used by the win-rate and
/// accepted-token accounting where capitalization is meaningful, e.g. pH vs Ph).
pub fn tokenize_words_cased(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.push(ch);
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Return the character sequence after whitespace normalization.
///
/// This is the unit of comparison for the character accuracy rate.
pub fn tokenize_chars(text: &str) -> Vec<char> {
    normalize_whitespace(text).chars().collect()
}

/// Count word tokens (cheap; avoids allocating the token vector).
pub fn count_words(text: &str) -> usize {
    let mut count = 0usize;
    let mut in_token = false;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            if !in_token {
                count += 1;
                in_token = true;
            }
        } else {
            in_token = false;
        }
    }
    count
}

/// Fraction of characters (excluding whitespace) that are alphanumeric.
///
/// Heavily garbled parser output has a low alphanumeric ratio; the CLS I
/// validity rules in the `selector` crate use this as a feature.
pub fn alphanumeric_ratio(text: &str) -> f64 {
    let mut alnum = 0usize;
    let mut total = 0usize;
    for ch in text.chars() {
        if ch.is_whitespace() {
            continue;
        }
        total += 1;
        if ch.is_alphanumeric() {
            alnum += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        alnum as f64 / total as f64
    }
}

/// Fraction of word tokens that appear to be "word-like": at least two
/// characters and composed mostly of alphabetic characters.
pub fn wordlike_ratio(text: &str) -> f64 {
    let tokens = tokenize_words(text);
    if tokens.is_empty() {
        return 0.0;
    }
    let wordlike = tokens
        .iter()
        .filter(|t| {
            t.chars().count() >= 2 && t.chars().filter(|c| c.is_alphabetic()).count() * 2 > t.chars().count()
        })
        .count();
    wordlike as f64 / tokens.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_runs() {
        assert_eq!(normalize_whitespace("  a \t\n b  "), "a b");
        assert_eq!(normalize_whitespace(""), "");
        assert_eq!(normalize_whitespace("   "), "");
        assert_eq!(normalize_whitespace("x"), "x");
    }

    #[test]
    fn tokenize_words_lowercases_and_drops_punctuation() {
        assert_eq!(tokenize_words("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize_words("E = mc^2"), vec!["e", "mc", "2"]);
        assert!(tokenize_words("  \t ").is_empty());
    }

    #[test]
    fn tokenize_words_cased_preserves_case() {
        assert_eq!(tokenize_words_cased("pH and Ph"), vec!["pH", "and", "Ph"]);
    }

    #[test]
    fn tokenize_chars_normalizes_first() {
        assert_eq!(tokenize_chars("a  b"), vec!['a', ' ', 'b']);
    }

    #[test]
    fn count_words_matches_tokenizer() {
        for text in ["", "one", "one two three", "a--b  c;;d", "αβγ δεζ"] {
            assert_eq!(count_words(text), tokenize_words(text).len(), "text = {text:?}");
        }
    }

    #[test]
    fn alphanumeric_ratio_bounds() {
        assert_eq!(alphanumeric_ratio(""), 0.0);
        assert_eq!(alphanumeric_ratio("abc"), 1.0);
        assert!(alphanumeric_ratio("a#b#") < 1.0);
        assert!(alphanumeric_ratio("####") < 1e-12);
    }

    #[test]
    fn wordlike_ratio_detects_garbled_text() {
        let clean = "this text looks like normal scientific prose about enzymes";
        let garbled = "x1 9z 3q 7w 0p 2m 8k 4j";
        assert!(wordlike_ratio(clean) > 0.8);
        assert!(wordlike_ratio(garbled) < 0.6);
    }

    #[test]
    fn unicode_tokens_survive() {
        let toks = tokenize_words("Schrödinger café naïve");
        assert_eq!(toks, vec!["schrödinger", "café", "naïve"]);
    }
}
