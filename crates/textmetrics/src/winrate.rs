//! Win rates from pairwise human preferences.
//!
//! The paper's user study presents annotators with two parser outputs for the
//! same document page and records which one was preferred (or "neither").
//! Because each parser appears in a different number of pairings, the paper
//! reports *normalized* win rates. We additionally provide a Bradley–Terry
//! strength fit, which is the standard way of turning pairwise outcomes into
//! a per-parser score and is used by the preference-study analysis binary.

use std::collections::HashMap;

/// Outcome of showing a user one pair of parser outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PreferenceOutcome {
    /// The first parser's output was preferred.
    FirstWins,
    /// The second parser's output was preferred.
    SecondWins,
    /// The user was indifferent.
    Neither,
}

/// Tally of pairwise comparisons between named competitors.
#[derive(Debug, Clone, Default)]
pub struct WinRateTable {
    /// wins[(a, b)] = number of comparisons between a and b in which a won.
    wins: HashMap<(String, String), u64>,
    /// comparisons[(a, b)] = number of decisive comparisons between a and b
    /// (ties excluded), stored symmetrically under the ordered key.
    comparisons: HashMap<(String, String), u64>,
    /// Number of "neither" outcomes, for the decisiveness statistic.
    ties: u64,
    /// Total number of presented pairs.
    total_pairs: u64,
}

impl WinRateTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the outcome of one comparison between `first` and `second`.
    pub fn record(&mut self, first: &str, second: &str, outcome: PreferenceOutcome) {
        self.total_pairs += 1;
        match outcome {
            PreferenceOutcome::Neither => {
                self.ties += 1;
            }
            PreferenceOutcome::FirstWins => {
                *self.wins.entry((first.to_string(), second.to_string())).or_insert(0) += 1;
                self.bump_comparison(first, second);
            }
            PreferenceOutcome::SecondWins => {
                *self.wins.entry((second.to_string(), first.to_string())).or_insert(0) += 1;
                self.bump_comparison(first, second);
            }
        }
    }

    fn bump_comparison(&mut self, a: &str, b: &str) {
        let key = if a <= b { (a.to_string(), b.to_string()) } else { (b.to_string(), a.to_string()) };
        *self.comparisons.entry(key).or_insert(0) += 1;
    }

    /// All competitor names seen so far, sorted.
    pub fn competitors(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .wins
            .keys()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .chain(self.comparisons.keys().flat_map(|(a, b)| [a.clone(), b.clone()]))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Number of decisive comparisons a competitor participated in.
    pub fn decisive_comparisons(&self, name: &str) -> u64 {
        self.comparisons.iter().filter(|((a, b), _)| a == name || b == name).map(|(_, &c)| c).sum()
    }

    /// Total wins of a competitor across all opponents.
    pub fn total_wins(&self, name: &str) -> u64 {
        self.wins.iter().filter(|((winner, _), _)| winner == name).map(|(_, &c)| c).sum()
    }

    /// Normalized win rate: wins divided by decisive comparisons involving the
    /// competitor. Returns `0.0` for unknown competitors.
    pub fn win_rate(&self, name: &str) -> f64 {
        let comps = self.decisive_comparisons(name);
        if comps == 0 {
            0.0
        } else {
            self.total_wins(name) as f64 / comps as f64
        }
    }

    /// Fraction of presented pairs on which users expressed a preference
    /// (the paper reports 91.3 %).
    pub fn decisiveness(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            1.0 - self.ties as f64 / self.total_pairs as f64
        }
    }

    /// Total number of recorded pairs (decisive + ties).
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }

    /// Fit Bradley–Terry strengths by minorization–maximization.
    ///
    /// Returns `(name, strength)` pairs normalized to sum to 1, sorted by
    /// descending strength. Competitors with no decisive comparisons get a
    /// strength of zero.
    pub fn bradley_terry(&self, iterations: usize) -> Vec<(String, f64)> {
        let names = self.competitors();
        if names.is_empty() {
            return Vec::new();
        }
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
        let n = names.len();
        // wins_matrix[i][j] = wins of i over j
        let mut wins_matrix = vec![vec![0f64; n]; n];
        for ((winner, loser), &count) in &self.wins {
            let i = index[winner.as_str()];
            let j = index[loser.as_str()];
            wins_matrix[i][j] += count as f64;
        }
        let mut strength = vec![1.0f64; n];
        for _ in 0..iterations.max(1) {
            let mut next = vec![0.0f64; n];
            for i in 0..n {
                let total_wins: f64 = wins_matrix[i].iter().sum();
                if total_wins == 0.0 {
                    next[i] = 0.0;
                    continue;
                }
                let mut denom = 0.0;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let pairings = wins_matrix[i][j] + wins_matrix[j][i];
                    if pairings > 0.0 {
                        denom += pairings / (strength[i] + strength[j]);
                    }
                }
                next[i] = if denom > 0.0 { total_wins / denom } else { 0.0 };
            }
            let sum: f64 = next.iter().sum();
            if sum > 0.0 {
                for v in &mut next {
                    *v /= sum;
                }
            }
            strength = next;
        }
        let mut out: Vec<(String, f64)> = names.into_iter().zip(strength).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table() {
        let t = WinRateTable::new();
        assert_eq!(t.decisiveness(), 0.0);
        assert!(t.competitors().is_empty());
        assert!(t.bradley_terry(10).is_empty());
        assert_eq!(t.win_rate("nougat"), 0.0);
    }

    #[test]
    fn basic_win_rates() {
        let mut t = WinRateTable::new();
        t.record("nougat", "pypdf", PreferenceOutcome::FirstWins);
        t.record("nougat", "pypdf", PreferenceOutcome::FirstWins);
        t.record("pypdf", "nougat", PreferenceOutcome::SecondWins);
        t.record("nougat", "pypdf", PreferenceOutcome::SecondWins);
        // nougat won 3 of 4 decisive comparisons
        assert!((t.win_rate("nougat") - 0.75).abs() < 1e-12);
        assert!((t.win_rate("pypdf") - 0.25).abs() < 1e-12);
        assert_eq!(t.decisiveness(), 1.0);
    }

    #[test]
    fn ties_reduce_decisiveness_but_not_win_rate_denominator() {
        let mut t = WinRateTable::new();
        t.record("a", "b", PreferenceOutcome::FirstWins);
        t.record("a", "b", PreferenceOutcome::Neither);
        assert!((t.decisiveness() - 0.5).abs() < 1e-12);
        assert!((t.win_rate("a") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bradley_terry_ranks_dominant_parser_first() {
        let mut t = WinRateTable::new();
        for _ in 0..9 {
            t.record("strong", "weak", PreferenceOutcome::FirstWins);
        }
        t.record("strong", "weak", PreferenceOutcome::SecondWins);
        for _ in 0..6 {
            t.record("strong", "middle", PreferenceOutcome::FirstWins);
        }
        for _ in 0..4 {
            t.record("strong", "middle", PreferenceOutcome::SecondWins);
        }
        for _ in 0..7 {
            t.record("middle", "weak", PreferenceOutcome::FirstWins);
        }
        for _ in 0..3 {
            t.record("middle", "weak", PreferenceOutcome::SecondWins);
        }
        let bt = t.bradley_terry(100);
        assert_eq!(bt[0].0, "strong");
        assert_eq!(bt[2].0, "weak");
        let total: f64 = bt.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn win_rates_of_all_competitors_average_to_half_in_round_robin() {
        let mut t = WinRateTable::new();
        t.record("a", "b", PreferenceOutcome::FirstWins);
        t.record("b", "c", PreferenceOutcome::FirstWins);
        t.record("c", "a", PreferenceOutcome::FirstWins);
        let names = t.competitors();
        let avg: f64 = names.iter().map(|n| t.win_rate(n)).sum::<f64>() / names.len() as f64;
        assert!((avg - 0.5).abs() < 1e-12);
    }
}
