//! Property-based tests for the metric invariants the rest of the system
//! relies on (boundedness, identity, symmetry, triangle inequality).

use proptest::prelude::*;
use textmetrics::bleu::{sentence_bleu, sentence_bleu_with, BleuConfig};
use textmetrics::levenshtein::{char_accuracy_rate, edit_distance, normalized_similarity};
use textmetrics::rouge::{rouge_l, rouge_n};
use textmetrics::stats::{pearson, percentile, r_squared};
use textmetrics::tokenize::{count_words, normalize_whitespace, tokenize_words};

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn sentence() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 0..40).prop_map(|ws| ws.join(" "))
}

fn short_text() -> impl Strategy<Value = String> {
    "[ -~]{0,120}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn edit_distance_identity(a in short_text()) {
        prop_assert_eq!(edit_distance(&a, &a), 0);
    }

    #[test]
    fn edit_distance_symmetry(a in short_text(), b in short_text()) {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
    }

    #[test]
    fn edit_distance_triangle(a in "[a-c]{0,25}", b in "[a-c]{0,25}", c in "[a-c]{0,25}") {
        let ab = edit_distance(&a, &b);
        let bc = edit_distance(&b, &c);
        let ac = edit_distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn edit_distance_bounded_by_longer_length(a in short_text(), b in short_text()) {
        let d = edit_distance(&a, &b);
        let la = a.chars().count();
        let lb = b.chars().count();
        prop_assert!(d <= la.max(lb));
        prop_assert!(d >= la.abs_diff(lb));
    }

    #[test]
    fn normalized_similarity_bounded(a in short_text(), b in short_text()) {
        let s = normalized_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn car_bounded_and_identity(a in sentence(), b in sentence()) {
        let c = char_accuracy_rate(&a, &b);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(char_accuracy_rate(&a, &a) > 0.999);
    }

    #[test]
    fn bleu_bounded(a in sentence(), b in sentence()) {
        let s = sentence_bleu(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s), "bleu out of range: {}", s);
    }

    #[test]
    fn bleu_identity_is_one(a in prop::collection::vec(word(), 4..40).prop_map(|ws| ws.join(" "))) {
        prop_assert!(sentence_bleu(&a, &a) > 0.999);
    }

    #[test]
    fn bleu_custom_orders_bounded(a in sentence(), b in sentence(), order in 1usize..6) {
        let cfg = BleuConfig { max_order: order, smoothing: 0.01 };
        let s = sentence_bleu_with(&a, &b, cfg);
        prop_assert!((0.0..=1.0).contains(&s.score));
        prop_assert!((0.0..=1.0).contains(&s.brevity_penalty));
    }

    #[test]
    fn rouge_bounded_and_symmetric_f1(a in sentence(), b in sentence()) {
        let rl = rouge_l(&a, &b);
        prop_assert!((0.0..=1.0).contains(&rl.f1));
        // F1 is symmetric because precision and recall swap roles.
        let rl_swapped = rouge_l(&b, &a);
        prop_assert!((rl.f1 - rl_swapped.f1).abs() < 1e-9);
        let r1 = rouge_n(&a, &b, 1);
        prop_assert!((0.0..=1.0).contains(&r1.f1));
    }

    #[test]
    fn rouge1_f1_at_least_rouge2_f1(a in sentence(), b in sentence()) {
        // Higher-order n-gram overlap can never exceed unigram overlap rate by
        // much; in particular ROUGE-2 == 0 whenever ROUGE-1 == 0.
        let r1 = rouge_n(&a, &b, 1);
        let r2 = rouge_n(&a, &b, 2);
        if r1.f1 == 0.0 {
            prop_assert!(r2.f1 == 0.0);
        }
    }

    #[test]
    fn normalize_whitespace_idempotent(a in short_text()) {
        let once = normalize_whitespace(&a);
        prop_assert_eq!(normalize_whitespace(&once), once.clone());
        prop_assert!(!once.contains("  "));
    }

    #[test]
    fn count_words_equals_tokenizer_len(a in short_text()) {
        prop_assert_eq!(count_words(&a), tokenize_words(&a).len());
    }

    #[test]
    fn pearson_bounded(pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..60)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn r_squared_of_perfect_prediction_is_one(values in prop::collection::vec(0.0f64..1.0, 3..50)) {
        // Skip degenerate constant vectors.
        let spread = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-9);
        prop_assert!((r_squared(&values, &values) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_within_min_max(values in prop::collection::vec(-100.0f64..100.0, 1..50), p in 0.0f64..100.0) {
        let v = percentile(&values, p).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }
}
