//! Compare every parser in the zoo on the same corpus: quality (BLEU, ROUGE,
//! CAR, coverage) and single-node throughput — a miniature of the paper's
//! Table 1 + Figure 3 legend.
//!
//! Run with: `cargo run --example parser_comparison --release`

use parsersim::cost::{node_throughput_table, NodeSpec};
use parsersim::evaluate::evaluate_corpus;
use parsersim::ParserKind;
use scicorpus::{Corpus, GeneratorConfig};

fn main() {
    let corpus = Corpus::generate(&GeneratorConfig {
        n_documents: 40,
        seed: 17,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.25,
        ..Default::default()
    });
    let evaluations = evaluate_corpus(corpus.documents(), 23);
    let throughputs = node_throughput_table(&NodeSpec::default(), 10.0);

    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>9} {:>12}",
        "Parser", "BLEU", "ROUGE", "CAR", "Coverage", "PDFs/s/node"
    );
    for kind in ParserKind::ALL {
        let n = evaluations.len().max(1) as f64;
        let mut bleu = 0.0;
        let mut rouge = 0.0;
        let mut car = 0.0;
        let mut coverage = 0.0;
        for eval in &evaluations {
            if let Some(p) = eval.for_parser(kind) {
                bleu += p.report.bleu;
                rouge += p.report.rouge;
                car += p.report.car;
                coverage += p.report.coverage;
            }
        }
        let throughput = throughputs.iter().find(|(k, _)| *k == kind).map(|(_, t)| *t).unwrap_or(0.0);
        println!(
            "{:<11} {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}% {:>12.2}",
            kind.name(),
            100.0 * bleu / n,
            100.0 * rouge / n,
            100.0 * car / n,
            100.0 * coverage / n,
            throughput
        );
    }
    println!();
    println!("Documents where each parser is the best choice:");
    for kind in ParserKind::ALL {
        let best = evaluations.iter().filter(|e| e.best_parser() == kind).count();
        println!("  {:<11} {best}", kind.name());
    }
}
