//! Simulate a large parallel parsing campaign on an HPC system: route a
//! workload with AdaParse, build the corresponding task graph, and run it on
//! 1–64 Polaris-like nodes with the Parsl-style executor — the Figure 4/5
//! view of the system.
//!
//! Run with: `cargo run --example parsing_campaign --release`

use adaparse::hpc::{adaparse_throughput_at_scale, parser_throughput_at_scale, tasks_for_alpha, WorkloadSpec};
use adaparse::AdaParseConfig;
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::ParserKind;

fn main() {
    let workload = WorkloadSpec { documents: 3_000, pages_per_doc: 10, mb_per_doc: 1.5 };
    let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
    let executor = ExecutorConfig::default();

    println!("Throughput scaling (PDFs/s) — {} documents per point", workload.documents);
    println!("{:>6} {:>10} {:>10} {:>12}", "nodes", "PyMuPDF", "Nougat", "AdaParse");
    for nodes in [1usize, 4, 16, 64] {
        let pymupdf = parser_throughput_at_scale(ParserKind::PyMuPdf, &workload, nodes, &executor);
        let nougat = parser_throughput_at_scale(ParserKind::Nougat, &workload, nodes, &executor);
        let ada = adaparse_throughput_at_scale(&config, &workload, nodes, &executor);
        println!("{nodes:>6} {pymupdf:>10.1} {nougat:>10.1} {ada:>12.1}");
    }

    // Zoom into one node: GPU utilization with and without warm starts.
    println!();
    println!("Single-node GPU utilization for the AdaParse workload:");
    let tasks = tasks_for_alpha(&config, &workload);
    for (label, warm) in [("warm-start", true), ("cold-start", false)] {
        let report = WorkflowExecutor::new(ExecutorConfig { warm_start: warm, ..executor })
            .run(&tasks, &ClusterConfig::polaris(1), &LustreModel::default());
        println!(
            "  {label:<11} makespan {:>8.1} s  mean GPU util {:>5.1} %  cold starts {}",
            report.makespan_seconds,
            100.0 * report.mean_gpu_utilization(),
            report.cold_starts
        );
    }
}
