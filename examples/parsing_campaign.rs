//! Simulate a large parallel parsing campaign on an HPC system: route a
//! workload with AdaParse, build the corresponding task graph, and run it on
//! 1–64 Polaris-like nodes with the Parsl-style executor — the Figure 4/5
//! view of the system.
//!
//! Run with: `cargo run --example parsing_campaign --release`

use adaparse::hpc::{
    adaparse_throughput_at_scale, parser_throughput_at_scale, tasks_for_alpha, WorkloadSpec,
};
use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, JsonlSink, PipelineConfig};
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::ParserKind;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn main() {
    let workload = WorkloadSpec { documents: 3_000, pages_per_doc: 10, mb_per_doc: 1.5 };
    let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
    let executor = ExecutorConfig::default();

    // A real (small) campaign through the staged parallel pipeline, streaming
    // records to JSONL instead of buffering them.
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: 64,
        seed: 17,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(64);
    let mut engine = AdaParseEngine::new(config.clone());
    engine.train_on_corpus(&docs[..16], 5);
    let pipeline = CampaignPipeline::new(PipelineConfig { workers: 0, shard_size: 16, ..Default::default() });
    let mut sink = JsonlSink::new(Vec::new());
    let result = pipeline.run_with_sink(&engine, &docs, 7, &mut sink).expect("in-memory JSONL");
    println!(
        "Pipeline campaign: {} docs, BLEU {:.3}, {:.1} % to {}, {} parser failures, {} JSONL bytes",
        result.quality.documents,
        result.quality.bleu,
        100.0 * result.high_quality_fraction,
        config.high_quality_parser.name(),
        result.failures.total(),
        sink.into_inner().expect("flush").len(),
    );
    println!();

    println!("Throughput scaling (PDFs/s) — {} documents per point", workload.documents);
    println!("{:>6} {:>10} {:>10} {:>12}", "nodes", "PyMuPDF", "Nougat", "AdaParse");
    for nodes in [1usize, 4, 16, 64] {
        let pymupdf = parser_throughput_at_scale(ParserKind::PyMuPdf, &workload, nodes, &executor);
        let nougat = parser_throughput_at_scale(ParserKind::Nougat, &workload, nodes, &executor);
        let ada = adaparse_throughput_at_scale(&config, &workload, nodes, &executor);
        println!("{nodes:>6} {pymupdf:>10.1} {nougat:>10.1} {ada:>12.1}");
    }

    // Zoom into one node: GPU utilization with and without warm starts.
    println!();
    println!("Single-node GPU utilization for the AdaParse workload:");
    let tasks = tasks_for_alpha(&config, &workload);
    for (label, warm) in [("warm-start", true), ("cold-start", false)] {
        let report = WorkflowExecutor::new(ExecutorConfig { warm_start: warm, ..executor }).run(
            &tasks,
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        println!(
            "  {label:<11} makespan {:>8.1} s  mean GPU util {:>5.1} %  cold starts {}",
            report.makespan_seconds,
            100.0 * report.mean_gpu_utilization(),
            report.cold_starts
        );
    }
}
