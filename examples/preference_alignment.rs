//! Run the simulated user-preference study and align the parser-selection
//! model with it via DPO — the paper's §6.3/§7.1 pipeline in miniature.
//!
//! Run with: `cargo run --example preference_alignment --release`

use parsersim::evaluate::evaluate_corpus;
use prefstudy::{PreferenceStudy, StudyAnalysis, StudyConfig};
use scicorpus::{Corpus, GeneratorConfig};
use selector::cls3::{AccuracyPredictor, ParserPreference, PredictorConfig};
use selector::dataset::AccuracyDataset;

fn main() {
    let corpus = Corpus::generate(&GeneratorConfig {
        n_documents: 40,
        seed: 29,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction: 0.25,
        ..Default::default()
    });
    let evaluations = evaluate_corpus(corpus.documents(), 31);

    // 1. Collect preferences from the simulated annotators.
    let study = PreferenceStudy::collect(
        &evaluations,
        &StudyConfig { annotators: 23, target_preferences: 800, ..Default::default() },
    );
    let analysis = StudyAnalysis::compute(&study, &evaluations);
    println!(
        "study: {} preferences, decisiveness {:.1} %, consensus {:.1} %, BLEU↔WR correlation {:.2}",
        analysis.n_preferences,
        100.0 * analysis.decisiveness,
        100.0 * analysis.consensus,
        analysis.bleu_winrate_correlation,
    );

    // 2. Supervised fine-tuning of the accuracy predictor.
    let dataset = AccuracyDataset::from_evaluations(corpus.documents(), &evaluations, 0.75);
    let mut predictor = AccuracyPredictor::new(PredictorConfig::default());
    predictor.fit_regression(dataset.train());
    let before = predictor.selection_accuracy(dataset.test());

    // 3. DPO post-training on the study's training split.
    let preferences: Vec<ParserPreference> = study
        .train()
        .iter()
        .filter_map(|record| {
            let preferred = record.preferred()?;
            let rejected = record.rejected()?;
            let eval = evaluations.iter().find(|e| e.doc_id.0 == record.doc_id)?;
            Some(ParserPreference {
                preferred,
                preferred_text: eval.for_parser(preferred)?.output.text.clone(),
                rejected,
                rejected_text: eval.for_parser(rejected)?.output.text.clone(),
            })
        })
        .collect();
    let pair_accuracy = predictor.fit_preferences(&preferences);
    let after = predictor.selection_accuracy(dataset.test());

    println!("DPO: {} pairs, pairwise accuracy {:.1} %", preferences.len(), 100.0 * pair_accuracy);
    println!("selection accuracy on the test split: {:.1} % -> {:.1} %", 100.0 * before, 100.0 * after);
    println!("per-parser alignment bias: {:?}", predictor.parser_bias());
}
