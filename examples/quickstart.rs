//! Quickstart: generate a small corpus, train AdaParse, and parse a held-out
//! set, printing the quality/throughput summary.
//!
//! Run with: `cargo run --example quickstart --release`

use adaparse::{AdaParseConfig, AdaParseEngine};
use parsersim::cost::NodeSpec;
use scicorpus::{Corpus, GeneratorConfig};

fn main() {
    // 1. A synthetic scientific corpus (stand-in for real PDFs).
    let corpus = Corpus::generate(&GeneratorConfig {
        n_documents: 60,
        seed: 7,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.2,
        ..Default::default()
    });
    let train: Vec<_> = corpus.train().into_iter().cloned().collect();
    let test: Vec<_> = corpus.test().into_iter().cloned().collect();
    println!("corpus: {} train / {} test documents", train.len(), test.len());

    // 2. Train the routing engine (CLS II + CLS III) on the training split.
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.05, ..Default::default() });
    engine.train_on_corpus(&train[..train.len().min(40)], 3);

    // 3. Parse the held-out documents adaptively.
    let result = engine.parse_documents(&test, 11);
    println!(
        "AdaParse: BLEU {:.1} %, ROUGE {:.1} %, CAR {:.1} %, coverage {:.1} %, accepted tokens {:.1} %",
        100.0 * result.quality.bleu,
        100.0 * result.quality.rouge,
        100.0 * result.quality.car,
        100.0 * result.quality.coverage,
        100.0 * result.quality.accepted_tokens,
    );
    println!(
        "routed {:.1} % of documents to {}, estimated single-node throughput {:.1} PDFs/s",
        100.0 * result.high_quality_fraction,
        engine.config().high_quality_parser,
        engine.node_throughput(&NodeSpec::default(), 10.0),
    );

    // 4. The JSONL output a campaign would write to storage.
    let jsonl = adaparse::output::to_jsonl(&result.records);
    println!("first output record: {}", jsonl.lines().next().unwrap_or(""));
}
