//! Umbrella crate for the AdaParse reproduction.
//!
//! This crate re-exports the workspace's public surface so the examples and
//! the cross-crate integration tests can use one coherent namespace. The
//! actual functionality lives in the member crates:
//!
//! * [`textmetrics`] — BLEU / ROUGE / CAR / accepted tokens / win rates,
//! * [`docmodel`] — the scientific document model and the SPDF container,
//! * [`scicorpus`] — synthetic corpus generation and augmentation,
//! * [`parsersim`] — the parser zoo simulators and their cost models,
//! * [`mlcore`] — the ML substrate (features, encoders, heads, LoRA, DPO),
//! * [`selector`] — CLS I/II/III and the Table 4 model zoo,
//! * [`prefstudy`] — the simulated human-preference study,
//! * [`hpcsim`] — the discrete-event HPC / Parsl simulator,
//! * [`adaparse`] — the adaptive routing engine and campaign driver.

pub use adaparse;
pub use docmodel;
pub use hpcsim;
pub use mlcore;
pub use parsersim;
pub use prefstudy;
pub use scicorpus;
pub use selector;
pub use textmetrics;
