//! Cross-crate integration tests: corpus → SPDF → parsers → metrics →
//! selector → AdaParse, exercised through the public APIs only.

use adaparse::{AdaParseConfig, AdaParseEngine};
use docmodel::spdf::{write_document, SpdfFile};
use parsersim::evaluate::evaluate_corpus;
use parsersim::{all_parsers, ParserKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scicorpus::{Corpus, GeneratorConfig};
use textmetrics::QualityReport;

fn small_corpus(n: usize, seed: u64) -> Corpus {
    Corpus::generate(&GeneratorConfig {
        n_documents: n,
        seed,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction: 0.25,
        ..Default::default()
    })
}

#[test]
fn every_generated_document_round_trips_through_spdf_and_every_parser() {
    let corpus = small_corpus(6, 1);
    for doc in corpus.documents() {
        let bytes = write_document(doc);
        let file = SpdfFile::parse(&bytes).expect("SPDF round trip");
        assert_eq!(file.pages.len(), doc.page_count());
        for parser in all_parsers() {
            let mut rng = StdRng::seed_from_u64(9);
            let output = parser.parse_bytes(&bytes, &mut rng).expect("parse");
            assert_eq!(output.pages_total, doc.page_count());
            let report = QualityReport::compute(&output.text, &doc.ground_truth(), output.coverage());
            assert!((0.0..=1.0).contains(&report.bleu));
            assert!((0.0..=1.0).contains(&report.car));
        }
    }
}

#[test]
fn adaptive_routing_beats_the_worst_fixed_parser_and_respects_the_budget() {
    let corpus = small_corpus(24, 2);
    let docs: Vec<_> = corpus.documents().to_vec();
    let (train, test) = docs.split_at(12);

    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
    engine.train_on_corpus(train, 5);
    let result = engine.parse_documents(test, 7);

    assert!(result.high_quality_fraction <= 0.2 + 1e-9);
    assert_eq!(result.records.len(), test.len());

    // Compare against fixed-parser baselines computed through the shared
    // evaluation pipeline.
    let evaluations = evaluate_corpus(test, 7);
    let fixed_bleu = |kind: ParserKind| {
        evaluations.iter().filter_map(|e| e.for_parser(kind)).map(|p| p.report.bleu).sum::<f64>()
            / evaluations.len() as f64
    };
    let worst = ParserKind::ALL.iter().map(|&k| fixed_bleu(k)).fold(f64::INFINITY, f64::min);
    assert!(
        result.quality.bleu > worst,
        "adaptive routing ({}) must beat the worst fixed parser ({})",
        result.quality.bleu,
        worst
    );
}

#[test]
fn jsonl_output_contains_one_valid_line_per_document() {
    let corpus = small_corpus(8, 3);
    let docs: Vec<_> = corpus.documents().to_vec();
    let engine = AdaParseEngine::new(AdaParseConfig::default());
    let result = engine.parse_documents(&docs, 13);
    let jsonl = adaparse::output::to_jsonl(&result.records);
    assert_eq!(jsonl.lines().count(), docs.len());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"doc_id\""));
        assert!(line.contains("\"parser\""));
    }
}
