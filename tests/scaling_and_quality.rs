//! Integration tests for the headline claims: throughput ordering at scale
//! (Figure 5) and the quality ranking structure of Tables 1–3.

use adaparse::hpc::{adaparse_throughput_at_scale, parser_throughput_at_scale, WorkloadSpec};
use adaparse::AdaParseConfig;
use hpcsim::ExecutorConfig;
use parsersim::cost::{CostModel, NodeSpec};
use parsersim::evaluate::evaluate_corpus;
use parsersim::ParserKind;
use scicorpus::augment::{augment_text_layers, AugmentConfig};
use scicorpus::{Corpus, GeneratorConfig};

#[test]
fn throughput_ordering_holds_across_node_counts() {
    let workload = WorkloadSpec { documents: 800, pages_per_doc: 10, mb_per_doc: 1.5 };
    let executor = ExecutorConfig::default();
    let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
    for nodes in [1usize, 8, 32] {
        let pymupdf = parser_throughput_at_scale(ParserKind::PyMuPdf, &workload, nodes, &executor);
        let nougat = parser_throughput_at_scale(ParserKind::Nougat, &workload, nodes, &executor);
        let marker = parser_throughput_at_scale(ParserKind::Marker, &workload, nodes, &executor);
        let ada = adaparse_throughput_at_scale(&config, &workload, nodes, &executor);
        assert!(pymupdf > ada && ada > nougat && nougat > marker,
            "ordering violated at {nodes} nodes: pymupdf {pymupdf}, ada {ada}, nougat {nougat}, marker {marker}");
    }
}

#[test]
fn headline_single_node_ratios_have_the_right_magnitude() {
    let node = NodeSpec::default();
    let rate = |k: ParserKind| CostModel::for_parser(k).node_throughput(&node, 10.0);
    let pymupdf_over_nougat = rate(ParserKind::PyMuPdf) / rate(ParserKind::Nougat);
    let pymupdf_over_pypdf = rate(ParserKind::PyMuPdf) / rate(ParserKind::Pypdf);
    assert!((50.0..400.0).contains(&pymupdf_over_nougat), "{pymupdf_over_nougat}");
    assert!((5.0..30.0).contains(&pymupdf_over_pypdf), "{pymupdf_over_pypdf}");
}

#[test]
fn degrading_text_layers_hurts_extraction_more_than_recognition() {
    let corpus = Corpus::generate(&GeneratorConfig {
        n_documents: 14,
        seed: 5,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction: 0.0,
        ..Default::default()
    });
    let clean_docs: Vec<_> = corpus.documents().to_vec();
    let mut degraded_docs = clean_docs.clone();
    augment_text_layers(&mut degraded_docs, &AugmentConfig { fraction: 1.0, seed: 9 });

    let mean_bleu = |docs: &[docmodel::Document], kind: ParserKind| {
        let evals = evaluate_corpus(docs, 3);
        evals.iter().filter_map(|e| e.for_parser(kind)).map(|p| p.report.bleu).sum::<f64>()
            / evals.len() as f64
    };
    let pymupdf_drop =
        mean_bleu(&clean_docs, ParserKind::PyMuPdf) - mean_bleu(&degraded_docs, ParserKind::PyMuPdf);
    let nougat_drop =
        mean_bleu(&clean_docs, ParserKind::Nougat) - mean_bleu(&degraded_docs, ParserKind::Nougat);
    assert!(
        pymupdf_drop > nougat_drop,
        "text-layer degradation must hurt extraction ({pymupdf_drop}) more than recognition ({nougat_drop})"
    );
}
