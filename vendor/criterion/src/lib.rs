//! Offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this stub implements the
//! pieces the workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a simple
//! measured loop (warm-up, then enough iterations to fill a short measurement
//! window) reporting the mean per-iteration wall time; there is no statistics
//! engine, HTML report, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display convention.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId { name: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Mean wall time per iteration, filled in by [`Bencher::iter`].
    mean: Duration,
    iters: u64,
    measurement_window: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then iterating until the measurement
    /// window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: how many iterations fit the window?
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let target = (self.measurement_window.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iters = target;
        self.mean = total / (target as u32).max(1);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short window: benches must stay runnable in CI smoke runs.
        Criterion { measurement_window: Duration::from_millis(300) }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher =
            Bencher { mean: Duration::ZERO, iters: 0, measurement_window: self.measurement_window };
        f(&mut bencher);
        println!("{label:<48} time: {:>12}   ({} iterations)", format_duration(bencher.mean), bencher.iters);
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine that takes an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Benchmark a routine under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_mean() {
        let mut c = Criterion { measurement_window: Duration::from_millis(5) };
        let mut captured = Duration::ZERO;
        c.run_one("smoke", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
            captured = b.mean;
        });
        assert!(captured > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("campaign", 8).to_string(), "campaign/8");
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion { measurement_window: Duration::from_millis(2) };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("x", 1), &3u32, |b, &n| b.iter(|| black_box(n) + 1));
        group.finish();
    }
}
