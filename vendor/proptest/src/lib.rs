//! Offline subset of the `proptest` property-testing API.
//!
//! The build environment has no crates.io access, so this stub implements
//! exactly the surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(…)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * strategies: character-class string patterns (`"[a-z]{1,8}"`), numeric
//!   ranges, tuples, `prop::collection::vec`, and `.prop_map`.
//!
//! There is no shrinking: a failing case fails with the generated inputs in
//! the panic message (the deterministic per-test RNG makes reruns exact).

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    /// String patterns of the form `[class]{m,n}` (a single character class
    /// with a repetition count), e.g. `"[a-z]{1,8}"` or `"[ -~]{0,120}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern for the proptest stub: {self:?} (expected \"[class]{{m,n}}\")"));
            let len = rng.gen_range(min..=max);
            (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
        }
    }

    /// Parse `[class]{m,n}` into (alphabet, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match quant.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        let chars: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || max < min {
            None
        } else {
            Some((alphabet, min, max))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of values drawn from `element` with a length in
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and deterministic RNG construction.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(…)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG derived from the test's name (FNV-1a), so each
    /// property sees a stable stream across runs and platforms.
    pub fn rng_for_test(name: &str) -> StdRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr,) => {
        $crate::prop_assume!($cond)
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(arg in strategy, …) { … }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::rng_for_test(stringify!($name));
            for _case in 0..config.cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                // The body runs in a closure so `prop_assume!` can skip the
                // case with an early `return`.
                let case = || $body;
                case();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_patterns_generate_within_spec() {
        let mut rng = crate::test_runner::rng_for_test("class_patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let printable = Strategy::generate(&"[ -~]{0,120}", &mut rng);
        assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::rng_for_test("vec_strategy");
        let strategy = prop::collection::vec(0usize..10, 2..6);
        for _ in 0..100 {
            let v = Strategy::generate(&strategy, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::rng_for_test("compose");
        let strategy = (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let x = Strategy::generate(&strategy, &mut rng);
            assert!((0.0..2.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0usize..50, b in "[a-z]{1,4}") {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(b.len(), b.chars().count());
        }
    }
}
