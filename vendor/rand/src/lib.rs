//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand 0.8` API the simulators actually use:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] with `gen_range`, `gen_bool`,
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded through
//!   SplitMix64 (not the upstream ChaCha12, but a high-quality stream with the
//!   same determinism guarantees: a fixed seed yields a fixed sequence),
//! * [`rngs::mock::StepRng`] for tests,
//! * [`seq::SliceRandom`] with `shuffle` / `choose`.
//!
//! Everything here is pure `std` and bitwise-deterministic across platforms,
//! which is what the reproduction's seeded simulations rely on.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` random bits to a uniform `f64` in `[0, 1)` (53-bit precision).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`; `high` must be greater than `low`.
    fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                low + u * (high - low)
            }
            fn sample_inclusive<G: RngCore + ?Sized>(low: Self, high: Self, rng: &mut G) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let u = unit_f64(rng.next_u64()) as $t;
                low + u * (high - low)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64. A fixed seed yields a fixed, platform-independent stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state; the
            // all-zero state (impossible here) would be a fixed point.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    pub mod mock {
        //! Mock generators for tests.

        use super::super::RngCore;

        /// A deterministic counter "generator": yields `initial`,
        /// `initial + increment`, `initial + 2·increment`, …
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a new `StepRng`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    /// Uniform index in `[0, n)` without requiring `Sized` on the generator.
    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..8usize);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(2..=8);
            assert!((2..=8).contains(&z));
            let w: u16 = rng.gen_range(1995..=2025u16);
            assert!((1995..=2025).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_range_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x = dynrng.gen_range(0..10);
        assert!((0..10).contains(&x));
        // Exercise `gen_bool` through the trait object too (value is random).
        let _ = dynrng.gen_bool(0.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(2, 1);
        assert_eq!(rng.next_u64(), 2);
        assert_eq!(rng.next_u64(), 3);
        assert_eq!([0u8; 4].choose(&mut rng).copied(), Some(0));
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
