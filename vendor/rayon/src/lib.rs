//! Offline subset of `rayon`: a scoped thread-pool with order-preserving
//! parallel map over slices and chunks.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice-parallelism surface the campaign pipeline uses with plain
//! `std::thread::scope` threads and an atomic work counter (dynamic
//! scheduling, like rayon's work stealing but without the deques):
//!
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — configure how many
//!   worker threads parallel iterators below use,
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — element parallelism,
//! * `slice.par_chunks(n).map(f).collect::<Vec<_>>()` — shard parallelism.
//!
//! Results are always collected **in input order**, so any pipeline built on
//! these primitives is deterministic regardless of the worker count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel iterators will use on this thread:
/// the installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_POOL_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (the stub never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Set the number of worker threads (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: workers are spawned scoped per parallel call, so
/// the pool itself is just the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's width governing any parallel iterators it
    /// creates. The previous width is restored even if `op` panics.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_POOL_THREADS.with(|c| c.replace(self.num_threads)));
        op()
    }
}

/// Run `work(i)` for every `i in 0..n_items` on up to `current_num_threads()`
/// scoped threads and return the results in index order.
fn parallel_indexed<R, F>(n_items: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(n_items.max(1));
    if threads <= 1 || n_items <= 1 {
        return (0..n_items).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let value = work(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("worker completed"))
        .collect()
}

/// Order-preserving parallel map: one work item per element of `items`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluate the map on the current pool and collect in input order.
    pub fn collect<C: FromOrderedResults<R>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        C::from_ordered(parallel_indexed(items.len(), move |i| f(&items[i])))
    }
}

/// Parallel iterator over the elements of a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// Order-preserving parallel map over chunks of a slice.
pub struct ParChunksMap<'a, T, F> {
    items: &'a [T],
    chunk: usize,
    f: F,
}

impl<'a, T, R, F> ParChunksMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    /// Evaluate the map on the current pool and collect in input order.
    pub fn collect<C: FromOrderedResults<R>>(self) -> C {
        let f = &self.f;
        let items = self.items;
        let chunk = self.chunk;
        let n_chunks = items.len().div_ceil(chunk);
        C::from_ordered(parallel_indexed(n_chunks, move |i| {
            let start = i * chunk;
            let end = (start + chunk).min(items.len());
            f(&items[start..end])
        }))
    }
}

/// Parallel iterator over fixed-size chunks of a slice.
pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Map each chunk.
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap { items: self.items, chunk: self.chunk, f }
    }
}

/// Collection types a parallel map can collect into.
pub trait FromOrderedResults<R> {
    /// Build the collection from per-index results (already in order).
    fn from_ordered(results: Vec<R>) -> Self;
}

impl<R> FromOrderedResults<R> for Vec<R> {
    fn from_ordered(results: Vec<R>) -> Self {
        results
    }
}

/// Entry points mirroring `rayon::prelude` — `par_iter` / `par_chunks` on
/// slices and `Vec`s.
pub mod prelude {
    use super::{ParChunks, ParIter};

    /// Parallel iteration over `&self`'s elements.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type.
        type Item: 'a;
        /// Parallel iterator over the elements.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// Parallel iteration over fixed-size chunks.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over `chunk_size`-element chunks (the last chunk
        /// may be shorter).
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be positive");
            ParChunks { items: self, chunk: chunk_size }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_preserves_order() {
        let input: Vec<usize> = (0..100).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<usize> = pool.install(|| input.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let input: Vec<usize> = (0..103).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let sums: Vec<Vec<usize>> = pool.install(|| input.par_chunks(10).map(|c| c.to_vec()).collect());
        let flat: Vec<usize> = sums.into_iter().flatten().collect();
        assert_eq!(flat, input);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let out: Vec<i32> = pool.install(|| [1, 2, 3].par_iter().map(|&x| x + 1).collect());
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn install_restores_previous_width() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn install_restores_width_after_a_panic() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            let caught =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.install(|| panic!("boom"))));
            assert!(caught.is_err());
            assert_eq!(current_num_threads(), 2, "width must be restored after a panic");
        });
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
