//! Offline marker-trait subset of `serde`.
//!
//! The reproduction annotates its data types with
//! `#[derive(Serialize, Deserialize)]` to document which types form the
//! stable data surface, but nothing actually serializes through serde — the
//! JSONL campaign output is hand-rolled (see `adaparse::output`). Since the
//! build environment has no crates.io access, this vendored stub keeps those
//! derives compiling: the traits are empty markers and the derive macros emit
//! empty impls.

// Lets the `::serde::…` paths emitted by the stub derive resolve when the
// derive is exercised inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
    enum Kind {
        A,
        B,
    }

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Kind>();
        assert_eq!(Kind::A, Kind::A);
        assert_ne!(Kind::A, Kind::B);
    }
}
