//! Offline stub `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace cannot reach crates.io, so the vendored `serde` crate defines
//! `Serialize` / `Deserialize` as marker traits (nothing in the reproduction
//! serializes through serde — JSONL output is hand-rolled) and this crate
//! derives empty impls for them. The token parsing is hand-written because
//! `syn`/`quote` are equally unavailable; it only needs to find the type name
//! after the `struct`/`enum` keyword, which covers every derived type in the
//! workspace (none are generic).

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following the `struct` or `enum` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_keyword = false;
    for tree in input.clone() {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return Some(text);
            }
            if text == "struct" || text == "enum" || text == "union" {
                saw_keyword = true;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => {
            format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap_or_else(|_| TokenStream::new())
        }
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}
