//! Offline subset of `serde_json`: an owned [`Value`] tree and a strict
//! recursive-descent parser ([`from_str`]).
//!
//! The build environment has no crates.io access, so this stub provides just
//! enough JSON machinery to *validate* the campaign's hand-rolled JSONL
//! output in tests: parse a line, check field presence and types. There is no
//! serializer and no serde integration.

use std::collections::BTreeMap;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys ordered for deterministic comparison).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Some(*n as u64),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut parser = Parser { bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than joined:
                            // the campaign output never emits them.
                            let c = char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_records() {
        let v = from_str(r#"{"doc_id":7,"parser":"Nougat","coverage":0.93,"ok":true}"#).unwrap();
        assert!(v.is_object());
        assert_eq!(v.get("doc_id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("parser").and_then(Value::as_str), Some("Nougat"));
        assert!((v.get("coverage").and_then(Value::as_f64).unwrap() - 0.93).abs() < 1e-12);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = from_str(r#"{"t":"a\nb\t\"q\" \f","arr":[1,-2.5,null,{"k":[]}]}"#).unwrap();
        assert_eq!(v.get("t").and_then(Value::as_str), Some("a\nb\t\"q\" \u{c}"));
        match v.get("arr") {
            Some(Value::Array(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[1].as_f64(), Some(-2.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str(r#"{"a":1,}"#).is_err());
        assert!(from_str(r#"{"a" 1}"#).is_err());
        assert!(from_str("[1, 2] trailing").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("{\"a\":\"\u{1}\"}").is_err());
    }
}
